package ntt

import (
	"fmt"

	"ringlwe/internal/zq"
)

// The lane-parallel ("vector") NTT backend.
//
// Same mathematics as the Shoup engine — Shoup-multiplied twiddles, lazy
// [0, 2q) intermediates — but the stage loops are restructured the way a
// SIMD unit wants them, which is the DATE 2015 paper's word-level
// parallelism theme transposed from a Cortex-M register file to modern
// 8-lane vector pipelines:
//
//   - Flat lane blocks. Wherever the butterfly stride allows it, eight
//     butterflies are processed per iteration through *[8]uint32 array
//     pointers: the conversion proves the bounds once per block, so the
//     lane bodies compile to straight-line loads and stores with no
//     bounds checks and no loop-carried dependency between lanes.
//   - Hoisted twiddle broadcasts. The twiddle and its Shoup companion are
//     loaded once per butterfly group and held in registers across the
//     whole block — the scalar analogue of a SIMD broadcast.
//   - Branchless folds. Every conditional subtraction is zq.CondSub, an
//     arithmetic sign-bit fold (see the lane-width bound lemma in
//     internal/zq/lazy.go) instead of a compare-and-branch, so the eight
//     lane chains never serialize on flags and map one to one onto
//     compare/mask/add lane instructions.
//   - Fused normalization. The forward transform's lazy→canonical sweep
//     is folded into the final (stride-1) stage, and the inverse's into
//     its n⁻¹ scaling — no separate normalization pass touches memory.
//
// The short-stride stages (step 4, 2, 1), where lo and hi lanes interleave
// inside one block, get dedicated kernels that keep the whole 8-coefficient
// block in registers; this is the layout an in-register shuffle network
// would use, so a future assembly kernel can replace each Go kernel
// behind the per-GOARCH seam in vector_amd64.go without touching callers.
//
// Results are bit-identical to the Barrett reference and the Shoup engine
// (asserted by the differential tests and scheme KATs); only the schedule
// differs.

// VectorEngine is the lane-parallel Shoup backend. Construct with
// NewVectorEngine (or via the "vector" registry entry); immutable after
// construction and safe for concurrent use.
type VectorEngine struct {
	t *Tables

	q, twoQ uint32

	// psiRevShoup[i] = Shoup companion of PsiRev[i]; likewise the inverse.
	psiRevShoup    []uint32
	psiInvRevShoup []uint32

	// nInv and its companion fold the inverse-NTT scaling and the final
	// normalization into one pass; nInvPsi = n⁻¹·ψ⁻¹ pre-merges the last
	// inverse stage's (single) twiddle into the scaling, so that stage
	// emits canonical coefficients directly and no separate scaling pass
	// runs at all.
	nInv, nInvShoup       uint32
	nInvPsi, nInvPsiShoup uint32
}

// NewVectorEngine precomputes the Shoup companions of every twiddle in t.
// The modulus must satisfy the vector kernels' bound lemma 4q ≤ 2³¹
// (zq.Modulus.VectorSafe) so the branchless sign-bit folds are sound, and
// the dimension must be ≥ 16 so every stride class has a full lane block;
// both paper parameter sets qualify with room to spare.
func NewVectorEngine(t *Tables) (Engine, error) {
	if !t.M.VectorSafe() {
		return nil, fmt.Errorf("ntt: vector engine needs 4q ≤ 2³¹, got q=%d", t.M.Q)
	}
	if t.N < 16 {
		return nil, fmt.Errorf("ntt: vector engine needs n ≥ 16, got n=%d", t.N)
	}
	e := &VectorEngine{
		t:              t,
		q:              t.M.Q,
		twoQ:           2 * t.M.Q,
		psiRevShoup:    make([]uint32, t.N),
		psiInvRevShoup: make([]uint32, t.N),
		nInv:           t.NInv,
		nInvShoup:      t.M.Shoup(t.NInv),
	}
	e.nInvPsi = t.M.Mul(t.NInv, t.PsiInvRev[1])
	e.nInvPsiShoup = t.M.Shoup(e.nInvPsi)
	for i := 0; i < t.N; i++ {
		e.psiRevShoup[i] = t.M.Shoup(t.PsiRev[i])
		e.psiInvRevShoup[i] = t.M.Shoup(t.PsiInvRev[i])
	}
	return e, nil
}

func init() {
	RegisterEngine("vector", NewVectorEngine)
}

// Name implements Engine.
func (e *VectorEngine) Name() string { return "vector" }

// Tables implements Engine.
func (e *VectorEngine) Tables() *Tables { return e.t }

// ISA reports which per-GOARCH kernel binding this build compiled in
// ("amd64", "portable", …) — diagnostics for the dispatch layer and the
// seam future assembly kernels replace.
func (e *VectorEngine) ISA() string { return vectorKernelISA }

// mulShoupLazy is zq.Modulus.MulShoupLazy with the modulus held in a
// register-resident scalar, so the kernels below inline it without
// touching the Modulus struct per lane.
func mulShoupLazy(v, w, ws, q uint32) uint32 {
	t := uint32((uint64(v) * uint64(ws)) >> 32)
	return v*w - t*q
}

// fwdButterfly8 runs eight forward butterflies u±w·v with one broadcast
// twiddle over two contiguous lane blocks, keeping every intermediate in
// the lazy [0, 2q) domain. The *[8]uint32 arguments carry their bounds in
// the type, so the lane bodies are check-free straight-line code.
func fwdButterfly8(lo, hi *[8]uint32, w, ws, q, twoQ uint32) {
	u0, v0 := lo[0], mulShoupLazy(hi[0], w, ws, q)
	u1, v1 := lo[1], mulShoupLazy(hi[1], w, ws, q)
	u2, v2 := lo[2], mulShoupLazy(hi[2], w, ws, q)
	u3, v3 := lo[3], mulShoupLazy(hi[3], w, ws, q)
	u4, v4 := lo[4], mulShoupLazy(hi[4], w, ws, q)
	u5, v5 := lo[5], mulShoupLazy(hi[5], w, ws, q)
	u6, v6 := lo[6], mulShoupLazy(hi[6], w, ws, q)
	u7, v7 := lo[7], mulShoupLazy(hi[7], w, ws, q)
	lo[0], hi[0] = zq.CondSub(u0+v0, twoQ), zq.CondSub(u0-v0+twoQ, twoQ)
	lo[1], hi[1] = zq.CondSub(u1+v1, twoQ), zq.CondSub(u1-v1+twoQ, twoQ)
	lo[2], hi[2] = zq.CondSub(u2+v2, twoQ), zq.CondSub(u2-v2+twoQ, twoQ)
	lo[3], hi[3] = zq.CondSub(u3+v3, twoQ), zq.CondSub(u3-v3+twoQ, twoQ)
	lo[4], hi[4] = zq.CondSub(u4+v4, twoQ), zq.CondSub(u4-v4+twoQ, twoQ)
	lo[5], hi[5] = zq.CondSub(u5+v5, twoQ), zq.CondSub(u5-v5+twoQ, twoQ)
	lo[6], hi[6] = zq.CondSub(u6+v6, twoQ), zq.CondSub(u6-v6+twoQ, twoQ)
	lo[7], hi[7] = zq.CondSub(u7+v7, twoQ), zq.CondSub(u7-v7+twoQ, twoQ)
}

// invButterfly8 runs eight inverse (Gentleman-Sande) butterflies with one
// broadcast twiddle: sums fold lazily, differences ride the 2q offset into
// the Shoup multiply (any uint32 is a valid Shoup operand).
func invButterfly8(lo, hi *[8]uint32, w, ws, q, twoQ uint32) {
	u0, v0 := lo[0], hi[0]
	u1, v1 := lo[1], hi[1]
	u2, v2 := lo[2], hi[2]
	u3, v3 := lo[3], hi[3]
	u4, v4 := lo[4], hi[4]
	u5, v5 := lo[5], hi[5]
	u6, v6 := lo[6], hi[6]
	u7, v7 := lo[7], hi[7]
	lo[0], hi[0] = zq.CondSub(u0+v0, twoQ), mulShoupLazy(u0-v0+twoQ, w, ws, q)
	lo[1], hi[1] = zq.CondSub(u1+v1, twoQ), mulShoupLazy(u1-v1+twoQ, w, ws, q)
	lo[2], hi[2] = zq.CondSub(u2+v2, twoQ), mulShoupLazy(u2-v2+twoQ, w, ws, q)
	lo[3], hi[3] = zq.CondSub(u3+v3, twoQ), mulShoupLazy(u3-v3+twoQ, w, ws, q)
	lo[4], hi[4] = zq.CondSub(u4+v4, twoQ), mulShoupLazy(u4-v4+twoQ, w, ws, q)
	lo[5], hi[5] = zq.CondSub(u5+v5, twoQ), mulShoupLazy(u5-v5+twoQ, w, ws, q)
	lo[6], hi[6] = zq.CondSub(u6+v6, twoQ), mulShoupLazy(u6-v6+twoQ, w, ws, q)
	lo[7], hi[7] = zq.CondSub(u7+v7, twoQ), mulShoupLazy(u7-v7+twoQ, w, ws, q)
}

// vecForwardGeneric is the portable whole-transform forward kernel: lazy
// butterflies throughout, canonical output via the normalization fused
// into the final stage. Stages are dispatched by stride class — wide
// strides run 8-lane blocks, the three interleaved tail strides (4, 2, 1)
// run dedicated in-register block kernels.
func vecForwardGeneric(e *VectorEngine, a Poly) {
	n := e.t.N
	q, twoQ := e.q, e.twoQ
	psi, psiS := e.t.PsiRev, e.psiRevShoup

	// Wide stages: stride ≥ 8, every group splits into full lane blocks.
	step := n
	half := 1
	for ; step > 8; half <<= 1 {
		step >>= 1
		for i := 0; i < half; i++ {
			w, ws := psi[half+i], psiS[half+i]
			j1 := 2 * i * step
			for j := j1; j < j1+step; j += 8 {
				fwdButterfly8((*[8]uint32)(a[j:]), (*[8]uint32)(a[j+step:]), w, ws, q, twoQ)
			}
		}
	}

	// step == 4: one 8-coefficient block per group, lanes 0-3 low and
	// 4-7 high, twiddle broadcast across the four in-block butterflies.
	half = n / 8
	for i := 0; i < half; i++ {
		w, ws := psi[half+i], psiS[half+i]
		g := (*[8]uint32)(a[8*i:])
		v0 := mulShoupLazy(g[4], w, ws, q)
		v1 := mulShoupLazy(g[5], w, ws, q)
		v2 := mulShoupLazy(g[6], w, ws, q)
		v3 := mulShoupLazy(g[7], w, ws, q)
		u0, u1, u2, u3 := g[0], g[1], g[2], g[3]
		g[0], g[4] = zq.CondSub(u0+v0, twoQ), zq.CondSub(u0-v0+twoQ, twoQ)
		g[1], g[5] = zq.CondSub(u1+v1, twoQ), zq.CondSub(u1-v1+twoQ, twoQ)
		g[2], g[6] = zq.CondSub(u2+v2, twoQ), zq.CondSub(u2-v2+twoQ, twoQ)
		g[3], g[7] = zq.CondSub(u3+v3, twoQ), zq.CondSub(u3-v3+twoQ, twoQ)
	}

	// step == 2: two groups (two twiddles) per 8-coefficient block.
	half = n / 4
	for i := 0; i < half; i += 2 {
		w0, ws0 := psi[half+i], psiS[half+i]
		w1, ws1 := psi[half+i+1], psiS[half+i+1]
		g := (*[8]uint32)(a[4*i:])
		v0 := mulShoupLazy(g[2], w0, ws0, q)
		v1 := mulShoupLazy(g[3], w0, ws0, q)
		v2 := mulShoupLazy(g[6], w1, ws1, q)
		v3 := mulShoupLazy(g[7], w1, ws1, q)
		u0, u1, u2, u3 := g[0], g[1], g[4], g[5]
		g[0], g[2] = zq.CondSub(u0+v0, twoQ), zq.CondSub(u0-v0+twoQ, twoQ)
		g[1], g[3] = zq.CondSub(u1+v1, twoQ), zq.CondSub(u1-v1+twoQ, twoQ)
		g[4], g[6] = zq.CondSub(u2+v2, twoQ), zq.CondSub(u2-v2+twoQ, twoQ)
		g[5], g[7] = zq.CondSub(u3+v3, twoQ), zq.CondSub(u3-v3+twoQ, twoQ)
	}

	// step == 1, fused with normalization: four pairs (four twiddles) per
	// block, and every output is folded from [0, 4q) straight down to the
	// canonical [0, q) — the forward transform's only normalization, paid
	// without a separate memory pass.
	half = n / 2
	for i := 0; i < half; i += 4 {
		w0, ws0 := psi[half+i], psiS[half+i]
		w1, ws1 := psi[half+i+1], psiS[half+i+1]
		w2, ws2 := psi[half+i+2], psiS[half+i+2]
		w3, ws3 := psi[half+i+3], psiS[half+i+3]
		g := (*[8]uint32)(a[2*i:])
		v0 := mulShoupLazy(g[1], w0, ws0, q)
		v1 := mulShoupLazy(g[3], w1, ws1, q)
		v2 := mulShoupLazy(g[5], w2, ws2, q)
		v3 := mulShoupLazy(g[7], w3, ws3, q)
		u0, u1, u2, u3 := g[0], g[2], g[4], g[6]
		g[0] = zq.CondSub(zq.CondSub(u0+v0, twoQ), q)
		g[1] = zq.CondSub(zq.CondSub(u0-v0+twoQ, twoQ), q)
		g[2] = zq.CondSub(zq.CondSub(u1+v1, twoQ), q)
		g[3] = zq.CondSub(zq.CondSub(u1-v1+twoQ, twoQ), q)
		g[4] = zq.CondSub(zq.CondSub(u2+v2, twoQ), q)
		g[5] = zq.CondSub(zq.CondSub(u2-v2+twoQ, twoQ), q)
		g[6] = zq.CondSub(zq.CondSub(u3+v3, twoQ), q)
		g[7] = zq.CondSub(zq.CondSub(u3-v3+twoQ, twoQ), q)
	}
}

// vecInverseGeneric is the portable whole-transform inverse kernel: the
// stride classes of the forward kernel mirrored, with the final n⁻¹
// scaling (and its fused normalization) left to vecScaleNInvGeneric.
func vecInverseGeneric(e *VectorEngine, a Poly) {
	n := e.t.N
	q, twoQ := e.q, e.twoQ
	psi, psiS := e.t.PsiInvRev, e.psiInvRevShoup

	// step == 1: four pairs per block.
	half := n / 2
	for i := 0; i < half; i += 4 {
		w0, ws0 := psi[half+i], psiS[half+i]
		w1, ws1 := psi[half+i+1], psiS[half+i+1]
		w2, ws2 := psi[half+i+2], psiS[half+i+2]
		w3, ws3 := psi[half+i+3], psiS[half+i+3]
		g := (*[8]uint32)(a[2*i:])
		u0, v0 := g[0], g[1]
		u1, v1 := g[2], g[3]
		u2, v2 := g[4], g[5]
		u3, v3 := g[6], g[7]
		g[0], g[1] = zq.CondSub(u0+v0, twoQ), mulShoupLazy(u0-v0+twoQ, w0, ws0, q)
		g[2], g[3] = zq.CondSub(u1+v1, twoQ), mulShoupLazy(u1-v1+twoQ, w1, ws1, q)
		g[4], g[5] = zq.CondSub(u2+v2, twoQ), mulShoupLazy(u2-v2+twoQ, w2, ws2, q)
		g[6], g[7] = zq.CondSub(u3+v3, twoQ), mulShoupLazy(u3-v3+twoQ, w3, ws3, q)
	}

	// step == 2: two groups per block.
	half = n / 4
	for i := 0; i < half; i += 2 {
		w0, ws0 := psi[half+i], psiS[half+i]
		w1, ws1 := psi[half+i+1], psiS[half+i+1]
		g := (*[8]uint32)(a[4*i:])
		u0, v0 := g[0], g[2]
		u1, v1 := g[1], g[3]
		u2, v2 := g[4], g[6]
		u3, v3 := g[5], g[7]
		g[0], g[2] = zq.CondSub(u0+v0, twoQ), mulShoupLazy(u0-v0+twoQ, w0, ws0, q)
		g[1], g[3] = zq.CondSub(u1+v1, twoQ), mulShoupLazy(u1-v1+twoQ, w0, ws0, q)
		g[4], g[6] = zq.CondSub(u2+v2, twoQ), mulShoupLazy(u2-v2+twoQ, w1, ws1, q)
		g[5], g[7] = zq.CondSub(u3+v3, twoQ), mulShoupLazy(u3-v3+twoQ, w1, ws1, q)
	}

	// step == 4: one group per block.
	half = n / 8
	for i := 0; i < half; i++ {
		w, ws := psi[half+i], psiS[half+i]
		g := (*[8]uint32)(a[8*i:])
		u0, v0 := g[0], g[4]
		u1, v1 := g[1], g[5]
		u2, v2 := g[2], g[6]
		u3, v3 := g[3], g[7]
		g[0], g[4] = zq.CondSub(u0+v0, twoQ), mulShoupLazy(u0-v0+twoQ, w, ws, q)
		g[1], g[5] = zq.CondSub(u1+v1, twoQ), mulShoupLazy(u1-v1+twoQ, w, ws, q)
		g[2], g[6] = zq.CondSub(u2+v2, twoQ), mulShoupLazy(u2-v2+twoQ, w, ws, q)
		g[3], g[7] = zq.CondSub(u3+v3, twoQ), mulShoupLazy(u3-v3+twoQ, w, ws, q)
	}

	// Wide stages: stride ≥ 8, except the final (half == 1) stage.
	step := 8
	for half = n / 16; half >= 2; half >>= 1 {
		j1 := 0
		for i := 0; i < half; i++ {
			w, ws := psi[half+i], psiS[half+i]
			for j := j1; j < j1+step; j += 8 {
				invButterfly8((*[8]uint32)(a[j:]), (*[8]uint32)(a[j+step:]), w, ws, q, twoQ)
			}
			j1 += 2 * step
		}
		step <<= 1
	}

	// Final stage (half == 1, stride n/2), fused with the n⁻¹ scaling:
	// the stage's single twiddle is pre-merged into nInvPsi, so the low
	// outputs scale by n⁻¹ and the high outputs by n⁻¹·ψ⁻¹ — one Shoup
	// multiply per coefficient lands everything canonical, and the
	// transform needs no separate scaling or normalization pass.
	nv, nvs := e.nInv, e.nInvShoup
	np, nps := e.nInvPsi, e.nInvPsiShoup
	step = n / 2
	for j := 0; j < step; j += 8 {
		lo := (*[8]uint32)(a[j:])
		hi := (*[8]uint32)(a[j+step:])
		u0, v0 := lo[0], hi[0]
		u1, v1 := lo[1], hi[1]
		u2, v2 := lo[2], hi[2]
		u3, v3 := lo[3], hi[3]
		u4, v4 := lo[4], hi[4]
		u5, v5 := lo[5], hi[5]
		u6, v6 := lo[6], hi[6]
		u7, v7 := lo[7], hi[7]
		lo[0] = zq.CondSub(mulShoupLazy(u0+v0, nv, nvs, q), q)
		lo[1] = zq.CondSub(mulShoupLazy(u1+v1, nv, nvs, q), q)
		lo[2] = zq.CondSub(mulShoupLazy(u2+v2, nv, nvs, q), q)
		lo[3] = zq.CondSub(mulShoupLazy(u3+v3, nv, nvs, q), q)
		lo[4] = zq.CondSub(mulShoupLazy(u4+v4, nv, nvs, q), q)
		lo[5] = zq.CondSub(mulShoupLazy(u5+v5, nv, nvs, q), q)
		lo[6] = zq.CondSub(mulShoupLazy(u6+v6, nv, nvs, q), q)
		lo[7] = zq.CondSub(mulShoupLazy(u7+v7, nv, nvs, q), q)
		hi[0] = zq.CondSub(mulShoupLazy(u0-v0+twoQ, np, nps, q), q)
		hi[1] = zq.CondSub(mulShoupLazy(u1-v1+twoQ, np, nps, q), q)
		hi[2] = zq.CondSub(mulShoupLazy(u2-v2+twoQ, np, nps, q), q)
		hi[3] = zq.CondSub(mulShoupLazy(u3-v3+twoQ, np, nps, q), q)
		hi[4] = zq.CondSub(mulShoupLazy(u4-v4+twoQ, np, nps, q), q)
		hi[5] = zq.CondSub(mulShoupLazy(u5-v5+twoQ, np, nps, q), q)
		hi[6] = zq.CondSub(mulShoupLazy(u6-v6+twoQ, np, nps, q), q)
		hi[7] = zq.CondSub(mulShoupLazy(u7-v7+twoQ, np, nps, q), q)
	}
}

// Forward implements Engine: flat lane-block butterflies throughout, with
// the lazy→canonical normalization fused into the final stage.
func (e *VectorEngine) Forward(a Poly) {
	if len(a) != e.t.N {
		panic("ntt: Forward length mismatch")
	}
	vecForward(e, a)
}

// Inverse implements Engine: mirrored lane-block stages, with the n⁻¹
// scaling (twiddle-merged) and normalization fused into the final stage.
func (e *VectorEngine) Inverse(a Poly) {
	if len(a) != e.t.N {
		panic("ntt: Inverse length mismatch")
	}
	vecInverse(e, a)
}

// ForwardThree implements Engine as three flat kernel runs: the vector
// kernels amortize twiddle loads across lanes within each polynomial, so
// cross-polynomial interleaving (the scalar engines' fusion lever) would
// only break the contiguous lane blocks.
func (e *VectorEngine) ForwardThree(a, b, c Poly) {
	e.Forward(a)
	e.Forward(b)
	e.Forward(c)
}

// ForwardMany implements Engine; see ForwardThree for why the batch is
// processed polynomial by polynomial rather than interleaved.
func (e *VectorEngine) ForwardMany(polys []Poly) {
	n := e.t.N
	for _, p := range polys {
		if len(p) != n {
			panic("ntt: ForwardMany length mismatch")
		}
	}
	for _, p := range polys {
		vecForward(e, p)
	}
}

// PointwiseMul implements Engine with the Shoup engine's fused lazy
// handling: the left operand folds canonical on the fly, so lazy inputs
// are accepted and the output is canonical.
func (e *VectorEngine) PointwiseMul(c, a, b Poly) {
	n := e.t.N
	if len(a) != n || len(b) != n || len(c) != n {
		panic("ntt: PointwiseMul length mismatch")
	}
	m := e.t.M
	q := e.q
	for i := range c {
		c[i] = m.Reduce(uint64(zq.CondSub(a[i], q)) * uint64(b[i]))
	}
}

// PointwiseMulAdd implements Engine: acc += a ∘ b with branchless folds;
// acc enters and leaves canonical.
func (e *VectorEngine) PointwiseMulAdd(acc, a, b Poly) {
	n := e.t.N
	if len(a) != n || len(b) != n || len(acc) != n {
		panic("ntt: PointwiseMulAdd length mismatch")
	}
	m := e.t.M
	q := e.q
	for i := range acc {
		s := acc[i] + m.Reduce(uint64(zq.CondSub(a[i], q))*uint64(b[i]))
		acc[i] = zq.CondSub(s, q)
	}
}

// Add implements Engine: branchless per-coefficient add — a straight-line
// loop of the form the compiler's auto-vectorizer (and any future lane
// kernel behind the vector seam) handles well.
func (e *VectorEngine) Add(c, a, b Poly) {
	n := e.t.N
	if len(a) != n || len(b) != n || len(c) != n {
		panic("ntt: Add length mismatch")
	}
	q := e.q
	for i := range c {
		c[i] = zq.CondSub(a[i]+b[i], q)
	}
}

// Sub implements Engine: branchless per-coefficient subtract via the
// add-q trick.
func (e *VectorEngine) Sub(c, a, b Poly) {
	n := e.t.N
	if len(a) != n || len(b) != n || len(c) != n {
		panic("ntt: Sub length mismatch")
	}
	q := e.q
	for i := range c {
		c[i] = zq.CondSub(a[i]+q-b[i], q)
	}
}

// ScalarMul implements Engine: one Shoup companion per call, branchless
// lazy products folded canonical on the way out.
func (e *VectorEngine) ScalarMul(c, a Poly, s uint32) {
	n := e.t.N
	if len(a) != n || len(c) != n {
		panic("ntt: ScalarMul length mismatch")
	}
	m := e.t.M
	q := e.q
	if s >= q {
		s %= q
	}
	sh := m.Shoup(s)
	for i := range c {
		c[i] = zq.CondSub(m.MulShoupLazy(a[i], s, sh), q)
	}
}

// ForwardInto implements Engine.
func (e *VectorEngine) ForwardInto(dst, src Poly) {
	prepInto(e.t, dst, src, "ForwardInto")
	e.Forward(dst)
}

// InverseInto implements Engine.
func (e *VectorEngine) InverseInto(dst, src Poly) {
	prepInto(e.t, dst, src, "InverseInto")
	e.Inverse(dst)
}

// MulInto implements Engine: two flat forward kernels (canonical out, via
// their fused normalization), the fused pointwise product, one inverse.
func (e *VectorEngine) MulInto(dst, a, b, scratch Poly) {
	n := e.t.N
	if len(dst) != n || len(a) != n || len(b) != n || len(scratch) != n {
		panic("ntt: MulInto length mismatch")
	}
	copy(scratch, b)
	if &dst[0] != &a[0] {
		copy(dst, a)
	}
	vecForward(e, dst)
	vecForward(e, scratch)
	e.PointwiseMul(dst, dst, scratch)
	e.Inverse(dst)
}
