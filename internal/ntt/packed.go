package ntt

// This file implements the paper's Algorithm 4 idea: because q fits in 13-14
// bits, two coefficients fit in one 32-bit word, so every load or store can
// move two coefficients at once and the butterfly loop can be unrolled by
// two. On the Cortex-M4F a memory access costs 2 cycles whether it is a
// halfword or a word, so packing halves the memory traffic and the loop
// overhead of the transform (paper §III-C/D).
//
// The peeled stage: with Cooley-Tukey scheduling the two coefficients that
// share a word are butterfly partners only in the stride-1 stage. The paper
// (whose listing runs the stages in the mirrored order) peels that stage out
// of the main loop and handles it with in-word butterflies; we do the same —
// it is the final stage here — so the main loop always enjoys the
// two-butterflies-per-word-pair pattern.

// PackedPoly stores a dimension-n polynomial in n/2 32-bit words: coefficient
// 2i lives in the low halfword of word i and coefficient 2i+1 in the high
// halfword. Valid only for moduli with BitLen ≤ 16.
type PackedPoly []uint32

const halfMask = 0xFFFF

func packPair(lo, hi uint32) uint32 { return lo | hi<<16 }

// Pack converts a natural-order polynomial into packed form.
func (t *Tables) Pack(a Poly) PackedPoly {
	if len(a) != t.N {
		panic("ntt: Pack length mismatch")
	}
	if t.M.BitLen() > 16 {
		panic("ntt: modulus too wide for 16-bit packing")
	}
	p := make(PackedPoly, t.N/2)
	for i := range p {
		p[i] = packPair(a[2*i], a[2*i+1])
	}
	return p
}

// Unpack converts a packed polynomial back to one coefficient per word.
func (t *Tables) Unpack(p PackedPoly) Poly {
	if len(p) != t.N/2 {
		panic("ntt: Unpack length mismatch")
	}
	a := make(Poly, t.N)
	for i, w := range p {
		a[2*i] = w & halfMask
		a[2*i+1] = w >> 16
	}
	return a
}

// ForwardPacked computes the same transform as Forward on a packed
// polynomial: natural order in, bit-reversed spectral order out. Every main-
// loop iteration loads two words (four coefficients), performs two
// butterflies sharing one twiddle factor, and stores two words — the paper's
// 50% memory-access reduction.
func (t *Tables) ForwardPacked(p PackedPoly) {
	if len(p) != t.N/2 {
		panic("ntt: ForwardPacked length mismatch")
	}
	m := t.M
	step := t.N
	for half := 1; half < t.N/2; half <<= 1 {
		step >>= 1
		ws := step / 2 // stride in words
		for i := 0; i < half; i++ {
			j1 := i * step // word index of the group start (= 2*i*step/2)
			s := t.PsiRev[half+i]
			for j := j1; j < j1+ws; j++ {
				wl := p[j]
				wh := p[j+ws]
				u1, u2 := wl&halfMask, wl>>16
				v1 := m.Mul(wh&halfMask, s)
				v2 := m.Mul(wh>>16, s)
				p[j] = packPair(m.Add(u1, v1), m.Add(u2, v2))
				p[j+ws] = packPair(m.Sub(u1, v1), m.Sub(u2, v2))
			}
		}
	}
	// Peeled stride-1 stage: butterfly partners share a word. One load and
	// one store per butterfly instead of two of each.
	halfN := t.N / 2
	for i := 0; i < halfN; i++ {
		s := t.PsiRev[halfN+i]
		w := p[i]
		u := w & halfMask
		v := m.Mul(w>>16, s)
		p[i] = packPair(m.Add(u, v), m.Sub(u, v))
	}
}

// InversePacked mirrors Inverse on packed data: bit-reversed spectral order
// in, natural coefficient order out, n⁻¹ scaling included. The stride-1
// stage (first here) uses in-word butterflies; later stages move word pairs.
func (t *Tables) InversePacked(p PackedPoly) {
	if len(p) != t.N/2 {
		panic("ntt: InversePacked length mismatch")
	}
	m := t.M
	halfN := t.N / 2
	// Peeled stride-1 stage.
	for i := 0; i < halfN; i++ {
		s := t.PsiInvRev[halfN+i]
		w := p[i]
		u := w & halfMask
		v := w >> 16
		p[i] = packPair(m.Add(u, v), m.Mul(m.Sub(u, v), s))
	}
	step := 2
	for half := t.N >> 2; half >= 1; half >>= 1 {
		ws := step / 2
		j1 := 0
		for i := 0; i < half; i++ {
			s := t.PsiInvRev[half+i]
			for j := j1; j < j1+ws; j++ {
				wl := p[j]
				wh := p[j+ws]
				u1, u2 := wl&halfMask, wl>>16
				v1, v2 := wh&halfMask, wh>>16
				p[j] = packPair(m.Add(u1, v1), m.Add(u2, v2))
				p[j+ws] = packPair(m.Mul(m.Sub(u1, v1), s), m.Mul(m.Sub(u2, v2), s))
			}
			j1 += 2 * ws
		}
		step <<= 1
	}
	for i := range p {
		w := p[i]
		p[i] = packPair(m.Mul(w&halfMask, t.NInv), m.Mul(w>>16, t.NInv))
	}
}

// PointwiseMulPacked sets c = a ∘ b on packed operands.
func (t *Tables) PointwiseMulPacked(c, a, b PackedPoly) {
	if len(a) != t.N/2 || len(b) != t.N/2 || len(c) != t.N/2 {
		panic("ntt: PointwiseMulPacked length mismatch")
	}
	m := t.M
	for i := range c {
		wa, wb := a[i], b[i]
		c[i] = packPair(m.Mul(wa&halfMask, wb&halfMask), m.Mul(wa>>16, wb>>16))
	}
}

// MulPacked returns a·b in Z_q[x]/(x^n+1) running the whole pipeline on
// packed data. Inputs are natural-order polynomials and are not modified.
func (t *Tables) MulPacked(a, b Poly) Poly {
	pa := t.Pack(a)
	pb := t.Pack(b)
	t.ForwardPacked(pa)
	t.ForwardPacked(pb)
	t.PointwiseMulPacked(pa, pa, pb)
	t.InversePacked(pa)
	return t.Unpack(pa)
}
