package ntt

import (
	"testing"

	"ringlwe/internal/rng"
	"ringlwe/internal/zq"
)

func manyTestTables(t testing.TB) *Tables {
	t.Helper()
	m, err := zq.NewModulus(7681)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTables(m, 256)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func randomPolys(tb *Tables, count int, seed uint64) []Poly {
	src := rng.NewXorshift128(seed)
	polys := make([]Poly, count)
	for i := range polys {
		polys[i] = make(Poly, tb.N)
		for j := range polys[i] {
			polys[i][j] = src.Uint32() % tb.M.Q
		}
	}
	return polys
}

// TestForwardManyMatchesForward pins ForwardMany to repeated Forward on
// every engine, across batch widths from the empty batch through widths
// past the fused-three special case.
func TestForwardManyMatchesForward(t *testing.T) {
	tb := manyTestTables(t)
	for _, name := range EngineNames() {
		eng, err := NewEngine(name, tb)
		if err != nil {
			t.Fatal(err)
		}
		for _, count := range []int{0, 1, 2, 3, 4, 5, 8} {
			got := randomPolys(tb, count, uint64(100+count))
			want := randomPolys(tb, count, uint64(100+count))
			eng.ForwardMany(got)
			for i := range want {
				eng.Forward(want[i])
			}
			for i := range want {
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("%s count=%d poly %d coeff %d: ForwardMany %d, Forward %d",
							name, count, i, j, got[i][j], want[i][j])
					}
				}
			}
		}
	}
}

// TestForwardThreeMatchesForwardMany pins the delegation: the historical
// fused-three entry point and a width-3 ForwardMany are bit-identical.
func TestForwardThreeMatchesForwardMany(t *testing.T) {
	tb := manyTestTables(t)
	for _, name := range EngineNames() {
		eng, err := NewEngine(name, tb)
		if err != nil {
			t.Fatal(err)
		}
		a := randomPolys(tb, 3, 7)
		b := randomPolys(tb, 3, 7)
		eng.ForwardThree(a[0], a[1], a[2])
		eng.ForwardMany(b)
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("%s poly %d coeff %d: ForwardThree %d, ForwardMany %d",
						name, i, j, a[i][j], b[i][j])
				}
			}
		}
	}
}

// TestForwardManyZeroAllocShoup pins the hot-path contract: driving a
// caller-held batch slice through the Shoup engine allocates nothing (the
// encrypt path reuses one workspace-owned slice this way; a slice literal
// built at an interface call site would escape).
func TestForwardManyZeroAllocShoup(t *testing.T) {
	tb := manyTestTables(t)
	eng, err := NewEngine("shoup", tb)
	if err != nil {
		t.Fatal(err)
	}
	polys := randomPolys(tb, 3, 9)
	allocs := testing.AllocsPerRun(20, func() {
		eng.ForwardMany(polys)
	})
	if allocs != 0 {
		t.Fatalf("ForwardMany allocates %.1f/op, want 0", allocs)
	}
}

// TestForwardManyConcurrent shares one engine instance across goroutines
// each transforming its own batch — the workspace concurrency model.
// Engines must be stateless after construction (tables are read-only), so
// this is race-free; the CI race detector holds every backend to it,
// including the vector engine's lane-block kernels.
func TestForwardManyConcurrent(t *testing.T) {
	tb := manyTestTables(t)
	const workers = 8
	for _, name := range EngineNames() {
		eng, err := NewEngine(name, tb)
		if err != nil {
			t.Fatal(err)
		}
		want := make([][]Poly, workers)
		got := make([][]Poly, workers)
		for w := 0; w < workers; w++ {
			want[w] = randomPolys(tb, 3, uint64(1000+w))
			got[w] = randomPolys(tb, 3, uint64(1000+w))
			for i := range want[w] {
				eng.Forward(want[w][i])
			}
		}
		done := make(chan int, workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				eng.ForwardMany(got[w])
				done <- w
			}(w)
		}
		for i := 0; i < workers; i++ {
			<-done
		}
		for w := 0; w < workers; w++ {
			for i := range want[w] {
				for j := range want[w][i] {
					if got[w][i][j] != want[w][i][j] {
						t.Fatalf("%s worker %d poly %d coeff %d: concurrent %d, sequential %d",
							name, w, i, j, got[w][i][j], want[w][i][j])
					}
				}
			}
		}
	}
}

// TestForwardManyLengthPanics pins the length validation.
func TestForwardManyLengthPanics(t *testing.T) {
	tb := manyTestTables(t)
	eng, err := NewEngine("shoup", tb)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ForwardMany with a short polynomial did not panic")
		}
	}()
	eng.ForwardMany([]Poly{make(Poly, tb.N), make(Poly, tb.N-1)})
}
