// Package ntt implements the negative-wrapped (negacyclic) number theoretic
// transform used for polynomial multiplication in Z_q[x]/(x^n + 1), following
// the DATE 2015 paper "Efficient Software Implementation of Ring-LWE
// Encryption" (Algorithms 3 and 4) and its CHES 2014 antecedent.
//
// Four multiplication engines are provided:
//
//   - Naive: the O(n²) schoolbook negacyclic convolution, used as the
//     correctness oracle in tests.
//   - Forward/Inverse: the merged-ψ iterative NTT (Cooley-Tukey butterflies
//     forward, Gentleman-Sande inverse). This is the mathematical content of
//     the paper's Algorithm 3: the 2n-th root ψ is folded into the twiddle
//     factors, so no separate pre-scaling pass by powers of ψ is needed.
//   - ForwardAlg3: a line-by-line transcription of the paper's Algorithm 3
//     (explicit bit-reversal followed by butterflies whose twiddle starts at
//     √ω_m), kept for fidelity and cross-checked against Forward.
//   - Packed forward/inverse (packed.go): two 16-bit coefficients per 32-bit
//     word, halving memory traffic exactly as the paper's Algorithm 4 does.
//   - ForwardThree (parallel.go): the paper's parallel-3 NTT, transforming
//     the three encryption-side polynomials in one pass so that twiddle
//     updates and loop overhead are paid once instead of three times.
//
// Transform-domain layout: Forward maps a polynomial in natural coefficient
// order to its spectrum in bit-reversed order; Inverse expects bit-reversed
// input and returns natural order. Pointwise multiplication commutes with
// that fixed permutation, so the scheme never needs to reorder.
package ntt

import (
	"fmt"

	"ringlwe/internal/zq"
)

// Poly is a polynomial over Z_q in coefficient (or spectral) representation;
// element i is the coefficient of x^i. All values are canonical residues.
type Poly []uint32

// Tables holds every precomputed constant needed to transform polynomials of
// one fixed degree over one fixed modulus. Construct with NewTables. Tables
// are immutable after construction and safe for concurrent use.
type Tables struct {
	M    *zq.Modulus
	N    int
	LogN uint

	// Omega is a primitive n-th root of unity; Psi is a primitive 2n-th root
	// with Psi² = Omega (so Psi^n = -1, the negacyclic sign).
	Omega, Psi uint32

	// PsiRev[i] = Psi^bitrev(i) drives the forward Cooley-Tukey butterflies;
	// PsiInvRev[i] = Psi^-bitrev(i) drives the inverse Gentleman-Sande ones.
	PsiRev    []uint32
	PsiInvRev []uint32

	// NInv is n⁻¹ mod q, applied as the final inverse-transform scaling.
	NInv uint32

	// StageRoots[s] holds (ω_m, √ω_m) for stage s (m = 2^(s+1)); this is the
	// paper's `primitive_root` lookup table for Algorithm 3/4, which avoids
	// computing twiddle bases inside the transform.
	StageRoots [][2]uint32
}

// NewTables precomputes transform constants for dimension n over modulus m.
// n must be a power of two ≥ 4 and q ≡ 1 (mod 2n) must hold (both paper
// parameter sets satisfy this: 7681 ≡ 1 mod 512, 12289 ≡ 1 mod 1024).
func NewTables(m *zq.Modulus, n int) (*Tables, error) {
	if n < 4 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ntt: dimension %d must be a power of two ≥ 4", n)
	}
	omega, psi, err := m.NTTRoots(n)
	if err != nil {
		return nil, fmt.Errorf("ntt: %w", err)
	}
	logN := uint(0)
	for 1<<logN < n {
		logN++
	}
	t := &Tables{
		M: m, N: n, LogN: logN,
		Omega: omega, Psi: psi,
		PsiRev:    make([]uint32, n),
		PsiInvRev: make([]uint32, n),
		NInv:      m.Inv(uint32(n)),
	}
	psiInv := m.Inv(psi)
	pow, powInv := uint32(1), uint32(1)
	fwd := make([]uint32, n) // psi^i
	inv := make([]uint32, n) // psi^-i
	for i := 0; i < n; i++ {
		fwd[i], inv[i] = pow, powInv
		pow = m.Mul(pow, psi)
		powInv = m.Mul(powInv, psiInv)
	}
	for i := 0; i < n; i++ {
		r := zq.BitReverse(uint32(i), logN)
		t.PsiRev[i] = fwd[r]
		t.PsiInvRev[i] = inv[r]
	}
	for mm := 2; mm <= n; mm <<= 1 {
		wm := m.Exp(omega, uint64(n/mm)) // primitive m-th root
		w0 := m.Exp(psi, uint64(n/mm))   // √ω_m, a primitive 2m-th root
		t.StageRoots = append(t.StageRoots, [2]uint32{wm, w0})
	}
	return t, nil
}

// NewPoly returns a zero polynomial of the tables' dimension.
func (t *Tables) NewPoly() Poly { return make(Poly, t.N) }

// Forward transforms a in place: natural coefficient order in, bit-reversed
// spectral order out. This is the merged-ψ Cooley-Tukey NTT; it performs
// (n/2)·log₂n butterflies, each costing one modular multiplication.
func (t *Tables) Forward(a Poly) {
	if len(a) != t.N {
		panic("ntt: Forward length mismatch")
	}
	m := t.M
	step := t.N
	for half := 1; half < t.N; half <<= 1 {
		step >>= 1
		for i := 0; i < half; i++ {
			j1 := 2 * i * step
			s := t.PsiRev[half+i]
			for j := j1; j < j1+step; j++ {
				u := a[j]
				v := m.Mul(a[j+step], s)
				a[j] = m.Add(u, v)
				a[j+step] = m.Sub(u, v)
			}
		}
	}
}

// Inverse transforms a in place: bit-reversed spectral order in, natural
// coefficient order out, including the final n⁻¹ scaling. Gentleman-Sande
// butterflies keep the multiplication on the difference path, matching the
// structure the paper's inverse transform uses.
func (t *Tables) Inverse(a Poly) {
	if len(a) != t.N {
		panic("ntt: Inverse length mismatch")
	}
	m := t.M
	step := 1
	for half := t.N >> 1; half >= 1; half >>= 1 {
		j1 := 0
		for i := 0; i < half; i++ {
			s := t.PsiInvRev[half+i]
			for j := j1; j < j1+step; j++ {
				u := a[j]
				v := a[j+step]
				a[j] = m.Add(u, v)
				a[j+step] = m.Mul(m.Sub(u, v), s)
			}
			j1 += 2 * step
		}
		step <<= 1
	}
	for j := range a {
		a[j] = m.Mul(a[j], t.NInv)
	}
}

// ForwardAlg3 is the paper's Algorithm 3 transcribed literally: bit-reverse
// first, then log₂n Cooley-Tukey stages whose running twiddle w starts at
// √ω_m and is multiplied by ω_m after each butterfly group. Output is the
// same spectrum as Forward but in natural index order; see SpectrumAlg3ToCT.
func (t *Tables) ForwardAlg3(a Poly) {
	if len(a) != t.N {
		panic("ntt: ForwardAlg3 length mismatch")
	}
	mod := t.M
	zq.BitReversePermute(a)
	stage := 0
	for m := 2; m <= t.N; m <<= 1 {
		wm := t.StageRoots[stage][0]
		w := t.StageRoots[stage][1]
		stage++
		for j := 0; j < m/2; j++ {
			for k := 0; k < t.N; k += m {
				u := a[j+k]
				v := mod.Mul(w, a[j+k+m/2])
				a[j+k] = mod.Add(u, v)
				a[j+k+m/2] = mod.Sub(u, v)
			}
			w = mod.Mul(w, wm)
		}
	}
}

// SpectrumAlg3ToCT converts a spectrum produced by ForwardAlg3 (natural
// order) into the bit-reversed layout produced by Forward, so the two can be
// compared or mixed.
func (t *Tables) SpectrumAlg3ToCT(a Poly) Poly {
	out := make(Poly, t.N)
	for i := 0; i < t.N; i++ {
		out[zq.BitReverse(uint32(i), t.LogN)] = a[i]
	}
	return out
}

// PointwiseMul sets c = a ∘ b (coefficient-wise product); any aliasing among
// the arguments is allowed.
func (t *Tables) PointwiseMul(c, a, b Poly) {
	if len(a) != t.N || len(b) != t.N || len(c) != t.N {
		panic("ntt: PointwiseMul length mismatch")
	}
	for i := range c {
		c[i] = t.M.Mul(a[i], b[i])
	}
}

// PointwiseMulAdd sets acc += a ∘ b.
func (t *Tables) PointwiseMulAdd(acc, a, b Poly) {
	if len(a) != t.N || len(b) != t.N || len(acc) != t.N {
		panic("ntt: PointwiseMulAdd length mismatch")
	}
	for i := range acc {
		acc[i] = t.M.Add(acc[i], t.M.Mul(a[i], b[i]))
	}
}

// Add sets c = a + b.
func (t *Tables) Add(c, a, b Poly) {
	if len(a) != t.N || len(b) != t.N || len(c) != t.N {
		panic("ntt: Add length mismatch")
	}
	for i := range c {
		c[i] = t.M.Add(a[i], b[i])
	}
}

// Sub sets c = a - b.
func (t *Tables) Sub(c, a, b Poly) {
	if len(a) != t.N || len(b) != t.N || len(c) != t.N {
		panic("ntt: Sub length mismatch")
	}
	for i := range c {
		c[i] = t.M.Sub(a[i], b[i])
	}
}

// ScalarMul sets c = s·a, every coefficient multiplied by the same scalar
// s (reduced mod q first). The scalar's Shoup companion is computed once
// per call and amortized over the n products, so the loop runs the same
// one-high-product multiply as the twiddle butterflies instead of a
// Barrett chain per coefficient.
func (t *Tables) ScalarMul(c, a Poly, s uint32) {
	if len(a) != t.N || len(c) != t.N {
		panic("ntt: ScalarMul length mismatch")
	}
	m := t.M
	if s >= m.Q {
		s %= m.Q
	}
	sh := m.Shoup(s)
	for i := range c {
		c[i] = m.MulShoup(a[i], s, sh)
	}
}

// Mul returns a·b in Z_q[x]/(x^n+1) via the full NTT pipeline (two forward
// transforms, a pointwise product and one inverse transform). The inputs are
// in natural coefficient order and are not modified.
func (t *Tables) Mul(a, b Poly) Poly {
	ah := append(Poly(nil), a...)
	bh := append(Poly(nil), b...)
	t.Forward(ah)
	t.Forward(bh)
	t.PointwiseMul(ah, ah, bh)
	t.Inverse(ah)
	return ah
}

// Naive returns a·b in Z_q[x]/(x^n+1) by schoolbook convolution with sign
// folding: x^n ≡ -1. O(n²); the test oracle for every fast engine.
func (t *Tables) Naive(a, b Poly) Poly {
	n := t.N
	m := t.M
	c := make(Poly, n)
	for i := 0; i < n; i++ {
		if a[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			p := m.Mul(a[i], b[j])
			k := i + j
			if k < n {
				c[k] = m.Add(c[k], p)
			} else {
				c[k-n] = m.Sub(c[k-n], p)
			}
		}
	}
	return c
}
