//go:build !amd64

package ntt

// Portable binding of the vector-engine kernels: every GOARCH without a
// dedicated file runs the generic lane-block kernels. The kernels are
// plain Go, so the "vector" backend is available — and still the fastest
// registered engine — on any 64-bit target; arm64 NEON assembly would get
// its own binding file exactly like vector_amd64.go.

// vectorKernelISA names the instruction family the active kernels target,
// for diagnostics and the CPU-dispatch layer.
const vectorKernelISA = "portable"

func vecForward(e *VectorEngine, a Poly) { vecForwardGeneric(e, a) }
func vecInverse(e *VectorEngine, a Poly) { vecInverseGeneric(e, a) }
