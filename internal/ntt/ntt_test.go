package ntt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ringlwe/internal/zq"
)

// paperTables returns transform tables for both paper parameter sets plus a
// small dimension that keeps exhaustive checks cheap.
func paperTables(t testing.TB) []*Tables {
	t.Helper()
	cases := []struct {
		q uint32
		n int
	}{
		{7681, 256},  // P1
		{12289, 512}, // P2
		{257, 16},    // small, q ≡ 1 mod 32
	}
	var out []*Tables
	for _, c := range cases {
		tab, err := NewTables(zq.MustModulus(c.q), c.n)
		if err != nil {
			t.Fatalf("NewTables(q=%d,n=%d): %v", c.q, c.n, err)
		}
		out = append(out, tab)
	}
	return out
}

func randPoly(rng *rand.Rand, t *Tables) Poly {
	p := make(Poly, t.N)
	for i := range p {
		p[i] = rng.Uint32() % t.M.Q
	}
	return p
}

func TestNewTablesRejectsBadDimensions(t *testing.T) {
	m := zq.MustModulus(7681)
	for _, n := range []int{0, 1, 2, 3, 6, 100} {
		if _, err := NewTables(m, n); err == nil {
			t.Errorf("NewTables(n=%d): expected error", n)
		}
	}
	// q=7681 supports only n ≤ 256 (needs 2n | q-1 with q-1 = 2^9·3·5).
	if _, err := NewTables(m, 512); err == nil {
		t.Error("NewTables(q=7681,n=512): expected error")
	}
}

func TestTablesInvariants(t *testing.T) {
	for _, tab := range paperTables(t) {
		m := tab.M
		if m.Mul(tab.Psi, tab.Psi) != tab.Omega {
			t.Errorf("q=%d n=%d: psi²≠omega", m.Q, tab.N)
		}
		if m.Exp(tab.Psi, uint64(tab.N)) != m.Q-1 {
			t.Errorf("q=%d n=%d: psi^n≠-1", m.Q, tab.N)
		}
		if m.Mul(tab.NInv, uint32(tab.N)) != 1 {
			t.Errorf("q=%d n=%d: NInv wrong", m.Q, tab.N)
		}
		if len(tab.StageRoots) != int(tab.LogN) {
			t.Errorf("q=%d n=%d: %d stage roots, want %d", m.Q, tab.N, len(tab.StageRoots), tab.LogN)
		}
		for s, pair := range tab.StageRoots {
			mm := uint64(2) << uint(s)
			if !m.IsPrimitiveRoot(pair[0], mm) {
				t.Errorf("stage %d: ω_m not a primitive %d-th root", s, mm)
			}
			if m.Mul(pair[1], pair[1]) != pair[0] {
				t.Errorf("stage %d: (√ω_m)² ≠ ω_m", s)
			}
		}
		// PsiRev/PsiInvRev are elementwise inverses.
		for i := 0; i < tab.N; i++ {
			if m.Mul(tab.PsiRev[i], tab.PsiInvRev[i]) != 1 {
				t.Fatalf("PsiRev[%d]·PsiInvRev[%d] ≠ 1", i, i)
			}
		}
	}
}

// The transform definition: Forward must equal the direct evaluation
// Ã[i] = Σ_j a[j]·ψ^j·ω^(ij), stored at bit-reversed position.
func TestForwardMatchesDirectEvaluation(t *testing.T) {
	for _, tab := range paperTables(t) {
		if tab.N > 64 {
			continue // O(n²) direct evaluation; small case suffices
		}
		m := tab.M
		rng := rand.New(rand.NewSource(7))
		a := randPoly(rng, tab)
		want := make(Poly, tab.N)
		for i := 0; i < tab.N; i++ {
			var acc uint32
			for j := 0; j < tab.N; j++ {
				term := m.Mul(a[j], m.Exp(tab.Psi, uint64(j)))
				term = m.Mul(term, m.Exp(tab.Omega, uint64(i*j)%uint64(tab.N)))
				acc = m.Add(acc, term)
			}
			want[zq.BitReverse(uint32(i), tab.LogN)] = acc
		}
		got := append(Poly(nil), a...)
		tab.Forward(got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("q=%d n=%d: Forward[%d]=%d want %d", m.Q, tab.N, i, got[i], want[i])
			}
		}
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	for _, tab := range paperTables(t) {
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 20; trial++ {
			a := randPoly(rng, tab)
			b := append(Poly(nil), a...)
			tab.Forward(b)
			tab.Inverse(b)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("q=%d n=%d trial %d: roundtrip differs at %d", tab.M.Q, tab.N, trial, i)
				}
			}
		}
	}
}

func TestMulMatchesNaive(t *testing.T) {
	for _, tab := range paperTables(t) {
		rng := rand.New(rand.NewSource(13))
		for trial := 0; trial < 5; trial++ {
			a := randPoly(rng, tab)
			b := randPoly(rng, tab)
			want := tab.Naive(a, b)
			got := tab.Mul(a, b)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("q=%d n=%d: Mul differs from Naive at %d: %d vs %d",
						tab.M.Q, tab.N, i, got[i], want[i])
				}
			}
		}
	}
}

// Naive must respect the defining relation x^n = -1: multiplying by x rotates
// with sign flip.
func TestNaiveNegacyclicShift(t *testing.T) {
	tab := paperTables(t)[2] // small
	x := make(Poly, tab.N)
	x[1] = 1
	a := make(Poly, tab.N)
	for i := range a {
		a[i] = uint32(i + 1)
	}
	c := tab.Naive(a, x)
	if c[0] != tab.M.Neg(a[tab.N-1]) {
		t.Errorf("c[0] = %d, want -a[n-1] = %d", c[0], tab.M.Neg(a[tab.N-1]))
	}
	for i := 1; i < tab.N; i++ {
		if c[i] != a[i-1] {
			t.Errorf("c[%d] = %d, want %d", i, c[i], a[i-1])
		}
	}
}

func TestForwardAlg3MatchesForward(t *testing.T) {
	for _, tab := range paperTables(t) {
		rng := rand.New(rand.NewSource(17))
		for trial := 0; trial < 10; trial++ {
			a := randPoly(rng, tab)
			ct := append(Poly(nil), a...)
			tab.Forward(ct)
			alg3 := append(Poly(nil), a...)
			tab.ForwardAlg3(alg3)
			conv := tab.SpectrumAlg3ToCT(alg3)
			for i := range ct {
				if conv[i] != ct[i] {
					t.Fatalf("q=%d n=%d: Alg3 spectrum differs at %d", tab.M.Q, tab.N, i)
				}
			}
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	for _, tab := range paperTables(t) {
		rng := rand.New(rand.NewSource(19))
		a := randPoly(rng, tab)
		b := tab.Unpack(tab.Pack(a))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("pack/unpack differs at %d", i)
			}
		}
	}
}

func TestForwardPackedMatchesForward(t *testing.T) {
	for _, tab := range paperTables(t) {
		rng := rand.New(rand.NewSource(23))
		for trial := 0; trial < 10; trial++ {
			a := randPoly(rng, tab)
			ref := append(Poly(nil), a...)
			tab.Forward(ref)
			p := tab.Pack(a)
			tab.ForwardPacked(p)
			got := tab.Unpack(p)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("q=%d n=%d trial %d: packed forward differs at %d: %d vs %d",
						tab.M.Q, tab.N, trial, i, got[i], ref[i])
				}
			}
		}
	}
}

func TestInversePackedMatchesInverse(t *testing.T) {
	for _, tab := range paperTables(t) {
		rng := rand.New(rand.NewSource(29))
		for trial := 0; trial < 10; trial++ {
			a := randPoly(rng, tab)
			ref := append(Poly(nil), a...)
			tab.Inverse(ref)
			p := tab.Pack(a)
			tab.InversePacked(p)
			got := tab.Unpack(p)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("q=%d n=%d: packed inverse differs at %d", tab.M.Q, tab.N, i)
				}
			}
		}
	}
}

func TestMulPackedMatchesNaive(t *testing.T) {
	for _, tab := range paperTables(t) {
		rng := rand.New(rand.NewSource(31))
		a := randPoly(rng, tab)
		b := randPoly(rng, tab)
		want := tab.Naive(a, b)
		got := tab.MulPacked(a, b)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("q=%d n=%d: MulPacked differs at %d", tab.M.Q, tab.N, i)
			}
		}
	}
}

func TestForwardThreeMatchesThreeForwards(t *testing.T) {
	for _, tab := range paperTables(t) {
		rng := rand.New(rand.NewSource(37))
		a, b, c := randPoly(rng, tab), randPoly(rng, tab), randPoly(rng, tab)
		ra := append(Poly(nil), a...)
		rb := append(Poly(nil), b...)
		rc := append(Poly(nil), c...)
		tab.Forward(ra)
		tab.Forward(rb)
		tab.Forward(rc)
		tab.ForwardThree(a, b, c)
		for i := 0; i < tab.N; i++ {
			if a[i] != ra[i] || b[i] != rb[i] || c[i] != rc[i] {
				t.Fatalf("q=%d n=%d: ForwardThree differs at %d", tab.M.Q, tab.N, i)
			}
		}
	}
}

func TestForwardThreePackedMatches(t *testing.T) {
	for _, tab := range paperTables(t) {
		rng := rand.New(rand.NewSource(41))
		a, b, c := randPoly(rng, tab), randPoly(rng, tab), randPoly(rng, tab)
		ra := append(Poly(nil), a...)
		rb := append(Poly(nil), b...)
		rc := append(Poly(nil), c...)
		tab.Forward(ra)
		tab.Forward(rb)
		tab.Forward(rc)
		pa, pb, pc := tab.Pack(a), tab.Pack(b), tab.Pack(c)
		tab.ForwardThreePacked(pa, pb, pc)
		ga, gb, gc := tab.Unpack(pa), tab.Unpack(pb), tab.Unpack(pc)
		for i := 0; i < tab.N; i++ {
			if ga[i] != ra[i] || gb[i] != rb[i] || gc[i] != rc[i] {
				t.Fatalf("q=%d n=%d: ForwardThreePacked differs at %d", tab.M.Q, tab.N, i)
			}
		}
	}
}

// Multiplication in the quotient ring is linear and commutative; check with
// randomized properties through the fast pipeline.
func TestMulPropertiesQuick(t *testing.T) {
	tab := paperTables(t)[0] // P1
	rng := rand.New(rand.NewSource(43))
	gen := func() Poly { return randPoly(rng, tab) }

	commutes := func() bool {
		a, b := gen(), gen()
		x := tab.Mul(a, b)
		y := tab.Mul(b, a)
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	distributes := func() bool {
		a, b, c := gen(), gen(), gen()
		bc := make(Poly, tab.N)
		tab.Add(bc, b, c)
		left := tab.Mul(a, bc)
		x := tab.Mul(a, b)
		y := tab.Mul(a, c)
		right := make(Poly, tab.N)
		tab.Add(right, x, y)
		for i := range left {
			if left[i] != right[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(uint8) bool { return commutes() }, &quick.Config{MaxCount: 10}); err != nil {
		t.Errorf("commutativity: %v", err)
	}
	if err := quick.Check(func(uint8) bool { return distributes() }, &quick.Config{MaxCount: 10}); err != nil {
		t.Errorf("distributivity: %v", err)
	}
}

// The transform is linear: NTT(a+b) = NTT(a)+NTT(b).
func TestForwardLinearity(t *testing.T) {
	for _, tab := range paperTables(t) {
		rng := rand.New(rand.NewSource(47))
		a, b := randPoly(rng, tab), randPoly(rng, tab)
		sum := make(Poly, tab.N)
		tab.Add(sum, a, b)
		tab.Forward(sum)
		tab.Forward(a)
		tab.Forward(b)
		for i := range sum {
			if sum[i] != tab.M.Add(a[i], b[i]) {
				t.Fatalf("q=%d n=%d: linearity broken at %d", tab.M.Q, tab.N, i)
			}
		}
	}
}

func TestPointwiseMulAdd(t *testing.T) {
	tab := paperTables(t)[2]
	rng := rand.New(rand.NewSource(53))
	a, b := randPoly(rng, tab), randPoly(rng, tab)
	acc := randPoly(rng, tab)
	want := make(Poly, tab.N)
	for i := range want {
		want[i] = tab.M.Add(acc[i], tab.M.Mul(a[i], b[i]))
	}
	tab.PointwiseMulAdd(acc, a, b)
	for i := range want {
		if acc[i] != want[i] {
			t.Fatalf("PointwiseMulAdd differs at %d", i)
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	tab := paperTables(t)[2]
	short := make(Poly, tab.N-1)
	for name, f := range map[string]func(){
		"Forward":       func() { tab.Forward(short) },
		"Inverse":       func() { tab.Inverse(short) },
		"ForwardAlg3":   func() { tab.ForwardAlg3(short) },
		"Pack":          func() { tab.Pack(short) },
		"Unpack":        func() { tab.Unpack(make(PackedPoly, 1)) },
		"ForwardPacked": func() { tab.ForwardPacked(make(PackedPoly, 1)) },
		"InversePacked": func() { tab.InversePacked(make(PackedPoly, 1)) },
		"ForwardThree":  func() { tab.ForwardThree(short, short, short) },
		"PointwiseMul":  func() { tab.PointwiseMul(short, short, short) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on length mismatch", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkForwardP1(b *testing.B) { benchForward(b, 7681, 256) }
func BenchmarkForwardP2(b *testing.B) { benchForward(b, 12289, 512) }
func benchForward(b *testing.B, q uint32, n int) {
	tab, err := NewTables(zq.MustModulus(q), n)
	if err != nil {
		b.Fatal(err)
	}
	a := randPoly(rand.New(rand.NewSource(1)), tab)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Forward(a)
	}
}

func BenchmarkForwardPackedP1(b *testing.B) {
	tab, _ := NewTables(zq.MustModulus(7681), 256)
	p := tab.Pack(randPoly(rand.New(rand.NewSource(1)), tab))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.ForwardPacked(p)
	}
}
