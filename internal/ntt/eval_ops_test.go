package ntt

import (
	"testing"

	"ringlwe/internal/zq"
)

// evalOpsTables builds tables over both paper moduli so the lazy-domain
// engines are exercised at 13- and 14-bit widths.
func evalOpsTables(t *testing.T) []*Tables {
	t.Helper()
	var out []*Tables
	for _, c := range []struct {
		q uint32
		n int
	}{{7681, 256}, {12289, 512}, {12289, 256}} {
		tb, err := NewTables(zq.MustModulus(c.q), c.n)
		if err != nil {
			t.Fatalf("NewTables(q=%d,n=%d): %v", c.q, c.n, err)
		}
		out = append(out, tb)
	}
	return out
}

// TestEvalOpsMatchReference pins every engine's Add/Sub/ScalarMul to the
// plain modular arithmetic they claim to implement, including aliased
// destinations (the accumulator pattern of the evaluation layer).
func TestEvalOpsMatchReference(t *testing.T) {
	for _, tb := range evalOpsTables(t) {
		q := tb.M.Q
		polys := randomPolys(tb, 2, uint64(q)*uint64(tb.N))
		a, b := polys[0], polys[1]
		scalars := []uint32{0, 1, 2, 3, q - 1, q / 2, q, q + 5, 0xFFFFFFFF}
		for _, name := range EngineNames() {
			eng, err := NewEngine(name, tb)
			if err != nil {
				continue // backend rejects this modulus (e.g. packed needs ≤16 bits)
			}
			c := make(Poly, tb.N)
			eng.Add(c, a, b)
			for i := range c {
				if want := (a[i] + b[i]) % q; c[i] != want {
					t.Fatalf("%s q=%d: Add[%d] = %d, want %d", name, q, i, c[i], want)
				}
			}
			eng.Sub(c, a, b)
			for i := range c {
				if want := (a[i] + q - b[i]) % q; c[i] != want {
					t.Fatalf("%s q=%d: Sub[%d] = %d, want %d", name, q, i, c[i], want)
				}
			}
			for _, s := range scalars {
				eng.ScalarMul(c, a, s)
				for i := range c {
					if want := uint32(uint64(a[i]) * uint64(s%q) % uint64(q)); c[i] != want {
						t.Fatalf("%s q=%d: ScalarMul(s=%d)[%d] = %d, want %d", name, q, s, i, c[i], want)
					}
				}
			}
			// Aliased accumulator: c = c + b, then c = 3·c, in place.
			copy(c, a)
			eng.Add(c, c, b)
			eng.ScalarMul(c, c, 3)
			for i := range c {
				if want := uint32(uint64((a[i]+b[i])%q) * 3 % uint64(q)); c[i] != want {
					t.Fatalf("%s q=%d: aliased Add+ScalarMul[%d] = %d, want %d", name, q, i, c[i], want)
				}
			}
		}
	}
}
