package ringlwe

import (
	"bytes"
	"testing"
)

// Profile resolution: each preset resolves to its documented backend
// combination, reported by Scheme.Profile and recoverable by Name.
func TestProfileResolution(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want Profile
	}{
		{"default", nil, Profile{Engine: "shoup", Sampler: "knuth-yao"}},
		// Fast resolves through CPU dispatch, so its backends vary by
		// machine; fastProfile() is the single source of truth.
		{"fast", []Option{Fast()}, fastProfile()},
		{"reference", []Option{Reference()}, Profile{Engine: "barrett", Sampler: "knuth-yao"}},
		{"constant-time", []Option{ConstantTime()}, Profile{Engine: "shoup", Sampler: "cdt", ConstantTimeDecode: true}},
		{"custom", []Option{Fast(), WithSampler("cdt")}, Profile{Engine: fastProfile().Engine, Sampler: "cdt"}},
		{"custom", []Option{WithConstantTimeDecode()}, Profile{Engine: "shoup", Sampler: "knuth-yao", ConstantTimeDecode: true}},
		{"reference", []Option{ConstantTime(), WithProfile(Profile{})}, Profile{Engine: "shoup", Sampler: "knuth-yao"}},
	}
	// The last case: WithProfile with zero fields resolves to the defaults,
	// whose Name is "default".
	cases[len(cases)-1].name = "default"
	for _, c := range cases {
		s := NewDeterministic(P1(), 1, c.opts...)
		got := s.Profile()
		if got != c.want {
			t.Errorf("options %v resolved to %+v, want %+v", c.opts, got, c.want)
		}
		if got.Name() != c.name {
			t.Errorf("profile %+v named %q, want %q", got, got.Name(), c.name)
		}
	}
}

// The Reference profile reproduces the KAT-pinned deterministic pipeline
// bit for bit: same seed, same keys, same ciphertext as the default
// configuration (engine choice consumes no randomness; the sampler is the
// same serial Knuth-Yao).
func TestReferenceProfileBitIdentical(t *testing.T) {
	for _, p := range []*Params{P1(), P2()} {
		def := NewDeterministic(p, 42)
		ref := NewDeterministic(p, 42, Reference())
		pkD, skD, err := def.GenerateKeys()
		if err != nil {
			t.Fatal(err)
		}
		pkR, skR, err := ref.GenerateKeys()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pkD.Bytes(), pkR.Bytes()) || !bytes.Equal(skD.Bytes(), skR.Bytes()) {
			t.Fatalf("%s: Reference() diverges from the KAT-pinned key stream", p.Name())
		}
		msg := make([]byte, p.MessageSize())
		for i := range msg {
			msg[i] = byte(i * 7)
		}
		ctD, err := def.Encrypt(pkD, msg)
		if err != nil {
			t.Fatal(err)
		}
		ctR, err := ref.Encrypt(pkR, msg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ctD.Bytes(), ctR.Bytes()) {
			t.Fatalf("%s: Reference() diverges from the KAT-pinned ciphertext stream", p.Name())
		}
	}
}

// Profile round trip: a scheme rebuilt from another scheme's reported
// profile resolves to the identical configuration.
func TestProfileRoundTrip(t *testing.T) {
	for _, opts := range [][]Option{
		nil,
		{Fast()},
		{Reference()},
		{ConstantTime()},
		{WithEngine("packed"), WithSampler("cdt")},
	} {
		a := NewDeterministic(P1(), 7, opts...)
		b := NewDeterministic(P1(), 7, WithProfile(a.Profile()))
		if a.Profile() != b.Profile() {
			t.Errorf("round trip changed profile: %+v → %+v", a.Profile(), b.Profile())
		}
	}
}

// The ConstantTime profile interoperates bit for bit with Reference
// material: ciphertexts produced under either profile decrypt identically
// under the other (the KAT-compatibility requirement — profiles change
// instruction traces and randomness spending, never the cryptosystem).
func TestConstantTimeProfileInterop(t *testing.T) {
	p := P1()
	ref := NewDeterministic(p, 11, Reference())
	ct := NewDeterministic(p, 12, ConstantTime())

	pub, priv, err := ref.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, p.MessageSize())
	for i := range msg {
		msg[i] = byte(i*13 + 1)
	}

	// ConstantTime encrypts to a Reference key; both schemes decrypt.
	c1, err := ct.Encrypt(pub, msg)
	if err != nil {
		t.Fatal(err)
	}
	fromCT, err := ct.Decrypt(priv, c1)
	if err != nil {
		t.Fatal(err)
	}
	fromRef, err := ref.Decrypt(priv, c1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromCT, fromRef) {
		t.Error("constant-time and reference decoders disagree on the same ciphertext")
	}
	if !bytes.Equal(fromCT, msg) {
		t.Error("constant-time ciphertext did not round-trip under the reference key (seed-dependent LPR failure? pick another seed)")
	}

	// Reference encrypts; the ConstantTime scheme decrypts identically.
	c2, err := ref.Encrypt(pub, msg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ref.Decrypt(priv, c2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ct.Decrypt(priv, c2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("decoders disagree on a reference ciphertext")
	}
}

// The ConstantTime profile's workspace paths stay at zero steady-state
// allocations like every other profile (the CI allocation gate runs
// -run ZeroAlloc).
func TestConstantTimeZeroAlloc(t *testing.T) {
	p := P1()
	s := NewDeterministic(p, 13, ConstantTime())
	pub, priv, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	ws := s.NewWorkspace()
	msg := make([]byte, p.MessageSize())
	out := make([]byte, p.MessageSize())
	ct := NewCiphertext(p)
	if err := ws.EncryptInto(ct, pub, msg); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := ws.EncryptInto(ct, pub, msg); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("constant-time EncryptInto allocates %v objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := ws.DecryptInto(out, priv, ct); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("constant-time DecryptInto allocates %v objects/op, want 0", n)
	}
}

// countingReader yields a deterministic byte stream, standing in for a
// caller-supplied DRBG behind WithRandom.
type countingReader struct{ state uint64 }

func (r *countingReader) Read(p []byte) (int, error) {
	for i := range p {
		// splitmix64 step, one byte per output.
		r.state += 0x9E3779B97F4A7C15
		z := r.state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		p[i] = byte(z ^ (z >> 31))
	}
	return len(p), nil
}

// WithRandom drives every draw through the supplied reader: two schemes
// over identical streams generate identical keys, and the keys work.
func TestWithRandom(t *testing.T) {
	p := P1()
	s1 := New(p, WithRandom(&countingReader{state: 42}))
	s2 := New(p, WithRandom(&countingReader{state: 42}))

	pk1, sk1, err := s1.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	pk2, _, err := s2.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pk1.Bytes(), pk2.Bytes()) {
		t.Fatal("identical WithRandom streams produced different keys — the reader is not driving the randomness")
	}
	msg := make([]byte, p.MessageSize())
	copy(msg, "entropy via io.Reader")
	ct, err := s1.Encrypt(pk1, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s1.Decrypt(sk1, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Log("decryption failure (within LPR failure rate)")
	}
}
