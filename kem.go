package ringlwe

import (
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
)

// Key encapsulation over the encryption scheme. The random session key is
// sent as the plaintext; a confirmation hash rides alongside so the LPR
// failure rate (≈ 0.8% per encapsulation at P1) surfaces as a detectable
// error instead of a corrupted session key. On ErrDecapsulation the sender
// simply encapsulates again — this retry loop is how the hybrid-KEM
// example and a real protocol would use the scheme, and it preserves the
// paper's cryptosystem unchanged rather than grafting an error-correcting
// code onto it.

// SharedKeySize is the size of the encapsulated session key in bytes.
const SharedKeySize = 32

// confirmTagSize is the size of the key-confirmation hash.
const confirmTagSize = 16

// ErrDecapsulation reports that the ciphertext failed to decrypt to a
// confirmed key (wrong key material or an intrinsic LPR decryption
// failure). The encapsulator should retry with a fresh encapsulation.
var ErrDecapsulation = errors.New("ringlwe: decapsulation failed (retry with a fresh encapsulation)")

// EncapsulatedKey is the wire blob produced by Encapsulate:
// ciphertext ‖ confirmation tag.
type EncapsulatedKey []byte

// kemKey derives the session key from the transported seed.
func kemKey(seed []byte) [SharedKeySize]byte {
	h := sha256.New()
	h.Write([]byte("ringlwe-kem-v1 key"))
	h.Write(seed)
	var out [SharedKeySize]byte
	copy(out[:], h.Sum(nil))
	return out
}

// kemTag derives the confirmation tag from the transported seed.
func kemTag(seed []byte) [confirmTagSize]byte {
	h := sha256.New()
	h.Write([]byte("ringlwe-kem-v1 confirm"))
	h.Write(seed)
	var out [confirmTagSize]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Encapsulate transports a fresh random session key to pk. It returns the
// wire blob and the derived shared key. Works with both parameter sets:
// the seed fills the whole plaintext (32 bytes at P1, 64 at P2).
func (s *Scheme) Encapsulate(pk *PublicKey) (EncapsulatedKey, [SharedKeySize]byte, error) {
	var zero [SharedKeySize]byte
	seed := make([]byte, s.params.MessageSize())
	s.fillRandom(seed)
	ct, err := s.Encrypt(pk, seed)
	if err != nil {
		return nil, zero, err
	}
	tag := kemTag(seed)
	blob := append(ct.Bytes(), tag[:]...)
	return blob, kemKey(seed), nil
}

// Decapsulate recovers the session key from an encapsulation blob,
// verifying the confirmation tag. It returns ErrDecapsulation when the
// plaintext does not confirm — either wrong key material or an intrinsic
// decryption failure; the peer should encapsulate again.
func (s *Scheme) Decapsulate(sk *PrivateKey, blob EncapsulatedKey) ([SharedKeySize]byte, error) {
	var zero [SharedKeySize]byte
	ctLen := s.params.CiphertextSize()
	if len(blob) != ctLen+confirmTagSize {
		return zero, fmt.Errorf("ringlwe: encapsulation blob is %d bytes, want %d", len(blob), ctLen+confirmTagSize)
	}
	ct, err := ParseCiphertext(s.params, blob[:ctLen])
	if err != nil {
		return zero, err
	}
	seed, err := sk.Decrypt(ct)
	if err != nil {
		return zero, err
	}
	tag := kemTag(seed)
	if subtle.ConstantTimeCompare(tag[:], blob[ctLen:]) != 1 {
		return zero, ErrDecapsulation
	}
	return kemKey(seed), nil
}

// EncapsulationSize returns the wire size of an encapsulation blob.
func (p *Params) EncapsulationSize() int { return p.CiphertextSize() + confirmTagSize }
