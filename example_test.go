package ringlwe_test

import (
	"bytes"
	"errors"
	"fmt"

	"ringlwe"
)

// Encrypt and decrypt one message under the medium-term parameter set.
// (Deterministic seeds keep the example's output stable; production code
// uses ringlwe.New.)
func Example() {
	params := ringlwe.P1()
	scheme := ringlwe.NewDeterministic(params, 1)

	pub, priv, err := scheme.GenerateKeys()
	if err != nil {
		panic(err)
	}

	msg := make([]byte, params.MessageSize())
	copy(msg, "post-quantum greetings")

	ct, err := scheme.Encrypt(pub, msg)
	if err != nil {
		panic(err)
	}
	plain, err := priv.Decrypt(ct)
	if err != nil {
		panic(err)
	}
	fmt.Println(bytes.Equal(plain, msg))
	// Output: true
}

// Transport a session key with failure detection: the KEM's confirmation
// tag converts the scheme's intrinsic decryption-failure rate into a
// detectable, retryable error.
func ExampleScheme_Encapsulate() {
	scheme := ringlwe.NewDeterministic(ringlwe.P1(), 2)
	pub, priv, err := scheme.GenerateKeys()
	if err != nil {
		panic(err)
	}

	for {
		blob, senderKey, err := scheme.Encapsulate(pub)
		if err != nil {
			panic(err)
		}
		receiverKey, err := scheme.Decapsulate(priv, blob)
		if errors.Is(err, ringlwe.ErrDecapsulation) {
			continue // intrinsic failure: encapsulate again
		}
		if err != nil {
			panic(err)
		}
		fmt.Println(senderKey == receiverKey)
		break
	}
	// Output: true
}

// Keys and ciphertexts serialize to fixed-size blobs.
func ExamplePublicKey_Bytes() {
	params := ringlwe.P2()
	scheme := ringlwe.NewDeterministic(params, 3)
	pub, _, err := scheme.GenerateKeys()
	if err != nil {
		panic(err)
	}
	data := pub.Bytes()
	back, err := ringlwe.ParsePublicKey(params, data)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(data), back.Params().Name())
	// Output: 1793 P2
}
