package ringlwe_test

import (
	"bytes"
	"errors"
	"fmt"

	"ringlwe"
)

// Encrypt and decrypt one message under the medium-term parameter set.
// (Deterministic seeds keep the example's output stable; production code
// uses ringlwe.New.)
func Example() {
	params := ringlwe.P1()
	scheme := ringlwe.NewDeterministic(params, 1)

	pub, priv, err := scheme.GenerateKeys()
	if err != nil {
		panic(err)
	}

	msg := make([]byte, params.MessageSize())
	copy(msg, "post-quantum greetings")

	ct, err := scheme.Encrypt(pub, msg)
	if err != nil {
		panic(err)
	}
	plain, err := priv.Decrypt(ct)
	if err != nil {
		panic(err)
	}
	fmt.Println(bytes.Equal(plain, msg))
	// Output: true
}

// Transport a session key with failure detection: the KEM's confirmation
// tag converts the scheme's intrinsic decryption-failure rate into a
// detectable, retryable error.
func ExampleScheme_Encapsulate() {
	scheme := ringlwe.NewDeterministic(ringlwe.P1(), 2)
	pub, priv, err := scheme.GenerateKeys()
	if err != nil {
		panic(err)
	}

	for {
		blob, senderKey, err := scheme.Encapsulate(pub)
		if err != nil {
			panic(err)
		}
		receiverKey, err := scheme.Decapsulate(priv, blob)
		if errors.Is(err, ringlwe.ErrDecapsulation) {
			continue // intrinsic failure: encapsulate again
		}
		if err != nil {
			panic(err)
		}
		fmt.Println(senderKey == receiverKey)
		break
	}
	// Output: true
}

// Serve concurrent traffic with per-goroutine workspaces: the Scheme and
// keys are shared, each goroutine forks a workspace once and then
// encrypts with zero steady-state allocation.
func ExampleScheme_NewWorkspace() {
	params := ringlwe.P1()
	scheme := ringlwe.NewDeterministic(params, 4)
	pub, priv, err := scheme.GenerateKeys()
	if err != nil {
		panic(err)
	}

	ws := scheme.NewWorkspace() // one per goroutine
	msg := make([]byte, params.MessageSize())
	copy(msg, "reused buffers, no garbage")

	ct := ringlwe.NewCiphertext(params) // reusable destination
	out := make([]byte, params.MessageSize())
	if err := ws.EncryptInto(ct, pub, msg); err != nil {
		panic(err)
	}
	if err := ws.DecryptInto(out, priv, ct); err != nil {
		panic(err)
	}
	fmt.Println(bytes.Equal(out, msg))
	// Output: true
}

// Encrypt many messages at once: EncryptBatch fans the work out over a
// bounded pool of pooled workspaces and is safe on a shared Scheme.
func ExampleScheme_EncryptBatch() {
	params := ringlwe.P1()
	scheme := ringlwe.NewDeterministic(params, 5)
	pub, priv, err := scheme.GenerateKeys()
	if err != nil {
		panic(err)
	}

	msgs := make([][]byte, 8)
	for i := range msgs {
		msgs[i] = make([]byte, params.MessageSize())
		msgs[i][0] = byte(i)
	}
	cts, err := scheme.EncryptBatch(pub, msgs)
	if err != nil {
		panic(err)
	}
	plain, err := scheme.DecryptBatch(priv, cts)
	if err != nil {
		panic(err)
	}
	// Work distribution across the pool is scheduling-dependent, and the
	// LPR scheme decrypts wrongly with small probability (≈0.8% per
	// message at P1) — so this example shows the shape of the API and
	// leaves content checks to the KEM, which detects and retries
	// failures.
	fmt.Println(len(cts), len(plain))
	// Output: 8 8
}

// Depend on the narrowest capability interface: code written against
// Encrypter works with a Scheme, a Workspace, or any future implementation
// without change.
func ExampleEncrypter() {
	params := ringlwe.P1()
	scheme := ringlwe.NewDeterministic(params, 6)
	pub, priv, err := scheme.GenerateKeys()
	if err != nil {
		panic(err)
	}

	seal := func(e ringlwe.Encrypter, msg []byte) *ringlwe.Ciphertext {
		ct, err := e.Encrypt(pub, msg)
		if err != nil {
			panic(err)
		}
		return ct
	}
	msg := make([]byte, params.MessageSize())
	copy(msg, "capability interfaces")

	viaScheme := seal(scheme, msg)                   // one-shot path
	viaWorkspace := seal(scheme.NewWorkspace(), msg) // per-goroutine path

	a, _ := priv.Decrypt(viaScheme)
	b, _ := priv.Decrypt(viaWorkspace)
	fmt.Println(bytes.Equal(a, msg), bytes.Equal(b, msg))
	// Output: true true
}

// The KEM interface is the recommended transport for session keys: both
// the Scheme and a Workspace satisfy it.
func ExampleKEM() {
	scheme := ringlwe.NewDeterministic(ringlwe.P1(), 7)
	pub, priv, err := scheme.GenerateKeys()
	if err != nil {
		panic(err)
	}

	var kem ringlwe.KEM = scheme
	for {
		blob, senderKey, err := kem.Encapsulate(pub)
		if err != nil {
			panic(err)
		}
		receiverKey, err := kem.Decapsulate(priv, blob)
		if errors.Is(err, ringlwe.ErrDecapsulation) {
			continue // intrinsic failure: encapsulate again
		}
		if err != nil {
			panic(err)
		}
		fmt.Println(senderKey == receiverKey)
		break
	}
	// Output: true
}

// Additively homomorphic evaluation: ciphertexts encrypted under one key
// combine in the NTT domain without decryption, and the sum decrypts to
// the XOR of the plaintexts. The A1 parameter set is tuned for this (a
// 26-addend noise budget); folding past MaxAddends is refused with
// ErrNoiseBudget instead of silently corrupting the aggregate.
func ExampleEvaluator() {
	params := ringlwe.A1()
	scheme := ringlwe.NewDeterministic(params, 11)
	pub, priv, err := scheme.GenerateKeys()
	if err != nil {
		panic(err)
	}

	msgs := [][]byte{
		make([]byte, params.MessageSize()),
		make([]byte, params.MessageSize()),
		make([]byte, params.MessageSize()),
	}
	copy(msgs[0], "sensor A")
	copy(msgs[1], "sensor B")
	copy(msgs[2], "sensor C")
	cts := make([]*ringlwe.Ciphertext, len(msgs))
	for i, m := range msgs {
		if cts[i], err = scheme.Encrypt(pub, m); err != nil {
			panic(err)
		}
	}

	// Any Evaluator folds ciphertexts: the Scheme (concurrency-safe) or a
	// Workspace (per-goroutine). AggregateInto is the many-at-once form.
	var ev ringlwe.Evaluator = scheme
	sum := ringlwe.NewCiphertext(params)
	if err := ev.AggregateInto(sum, cts); err != nil {
		panic(err)
	}

	got, err := priv.Decrypt(sum)
	if err != nil {
		panic(err)
	}
	want := make([]byte, params.MessageSize())
	for _, m := range msgs {
		for i := range want {
			want[i] ^= m[i]
		}
	}
	fmt.Println(sum.Addends(), bytes.Equal(got, want))
	// Output: 3 true
}

// Self-describing blobs carry their parameter set: the receiver needs no
// out-of-band agreement on P1 vs P2.
func ExampleParseAnyCiphertext() {
	params := ringlwe.P2()
	scheme := ringlwe.NewDeterministic(params, 8)
	pub, _, err := scheme.GenerateKeys()
	if err != nil {
		panic(err)
	}
	ct, err := scheme.Encrypt(pub, make([]byte, params.MessageSize()))
	if err != nil {
		panic(err)
	}

	blob, err := ct.MarshalBinary() // versioned header + packed body
	if err != nil {
		panic(err)
	}
	back, err := ringlwe.ParseAnyCiphertext(blob) // no params argument
	if err != nil {
		panic(err)
	}
	fmt.Println(back.Params().Name(), bytes.Equal(back.Bytes(), ct.Bytes()))
	// Output: P2 true
}

// Profiles bundle backend choices; the resolved configuration is
// inspectable and round-trips through WithProfile.
func ExampleScheme_Profile() {
	scheme := ringlwe.New(ringlwe.P1(), ringlwe.ConstantTime())
	p := scheme.Profile()
	fmt.Println(p.Name(), p.Engine, p.Sampler, p.ConstantTimeDecode)
	// Output: constant-time shoup cdt true
}

// Keys and ciphertexts serialize to fixed-size blobs.
func ExamplePublicKey_Bytes() {
	params := ringlwe.P2()
	scheme := ringlwe.NewDeterministic(params, 3)
	pub, _, err := scheme.GenerateKeys()
	if err != nil {
		panic(err)
	}
	data := pub.Bytes()
	back, err := ringlwe.ParsePublicKey(params, data)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(data), back.Params().Name())
	// Output: 1793 P2
}
