package ringlwe

import (
	"fmt"
	"io"
	"slices"
	"sync"

	"ringlwe/internal/core"
)

// Streaming wire I/O. The self-describing format of wire.go is framed so
// that a receiver can act on the six-byte header alone: magic, version and
// kind validate the stream, and the registered parameter-set ID determines
// the exact body length before a single body byte arrives. The WriteTo and
// ReadFrom implementations below exploit that to move keys, ciphertexts
// and encapsulation blobs over io.Writer/io.Reader without materializing
// the whole blob — bodies stream through a small fixed chunk inside
// internal/core, so a secure-channel server never round-trips a key
// through an intermediate full-size slice.
//
// PublicKey, PrivateKey and Ciphertext implement io.WriterTo and
// io.ReaderFrom; EncapsulatedKey implements io.WriterTo (and its pointer
// io.ReaderFrom, reusing capacity). The ReadAny*From functions mirror the
// ParseAny* family: the parameter set rides in the header, so no params
// argument is needed.

// MaxWireSize bounds the total size (header plus body) of any
// self-describing object the streaming readers accept. The header's
// parameter-set ID determines the body length; a registered Custom set
// whose objects would exceed this bound is refused before any body byte
// is read, so a hostile header cannot make a reader commit to an
// arbitrarily large read.
const MaxWireSize = 1 << 20

// checkWireSize guards a header-derived body length against MaxWireSize.
func checkWireSize(what string, bodyLen int) error {
	if wireHeaderSize+bodyLen > MaxWireSize {
		return fmt.Errorf("ringlwe: %s body of %d bytes exceeds MaxWireSize", what, bodyLen)
	}
	return nil
}

// wireHeaderPool recycles header buffers: a stack array would escape
// through the io interface call, and the streaming paths are pinned at
// zero steady-state allocations.
var wireHeaderPool = sync.Pool{New: func() any { return new([wireHeaderSize]byte) }}

// writeWireHeader writes the six-byte header for (kind, id) to w.
func writeWireHeader(w io.Writer, kind byte, id uint16) (int64, error) {
	hdr := wireHeaderPool.Get().(*[wireHeaderSize]byte)
	defer wireHeaderPool.Put(hdr)
	appendWireHeader(hdr[:0], kind, id)
	n, err := w.Write(hdr[:])
	return int64(n), err
}

// readWireHeader reads and validates the six-byte header from r, resolving
// the embedded parameter set.
func readWireHeader(r io.Reader, wantKind byte) (*Params, int64, error) {
	hdr := wireHeaderPool.Get().(*[wireHeaderSize]byte)
	defer wireHeaderPool.Put(hdr)
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		return nil, int64(n), fmt.Errorf("ringlwe: reading %s header: %w", kindName(wantKind), err)
	}
	p, err := parseWireHeaderBytes(hdr[:], wantKind)
	if err != nil {
		return nil, int64(n), err
	}
	return p, int64(n), nil
}

// Compile-time assertions: the wire objects satisfy the streaming
// contracts.
var (
	_ io.WriterTo   = (*PublicKey)(nil)
	_ io.ReaderFrom = (*PublicKey)(nil)
	_ io.WriterTo   = (*PrivateKey)(nil)
	_ io.ReaderFrom = (*PrivateKey)(nil)
	_ io.WriterTo   = (*Ciphertext)(nil)
	_ io.ReaderFrom = (*Ciphertext)(nil)
	_ io.WriterTo   = EncapsulatedKey(nil)
	_ io.ReaderFrom = (*EncapsulatedKey)(nil)
)

// WriteTo streams the self-describing encoding of the public key to w
// (io.WriterTo): the six-byte header, then the packed body in fixed-size
// chunks — no intermediate full-blob slice. The parameter set must be
// registered; P1 and P2 always are.
func (pk *PublicKey) WriteTo(w io.Writer) (int64, error) {
	id, err := wireID(pk.params)
	if err != nil {
		return 0, err
	}
	n, err := writeWireHeader(w, wireKindPublicKey, id)
	if err != nil {
		return n, err
	}
	m, err := pk.inner.WriteBodyTo(w)
	return n + m, err
}

// ReadFrom streams a self-describing public key from r (io.ReaderFrom),
// recovering the parameter set from the header and reading exactly the
// body that set prescribes.
func (pk *PublicKey) ReadFrom(r io.Reader) (int64, error) {
	p, n, err := readWireHeader(r, wireKindPublicKey)
	if err != nil {
		return n, err
	}
	if err := checkWireSize("public key", 2*p.inner.PolyBytes()); err != nil {
		return n, err
	}
	inner, m, err := core.ReadPublicKeyBodyFrom(p.inner, r)
	if err != nil {
		return n + m, fmt.Errorf("ringlwe: %w", err)
	}
	pk.params, pk.inner = p, inner
	return n + m, nil
}

// ReadAnyPublicKeyFrom streams a self-describing public key from r without
// a params argument: the parameter set rides in the header.
func ReadAnyPublicKeyFrom(r io.Reader) (*PublicKey, error) {
	pk := new(PublicKey)
	if _, err := pk.ReadFrom(r); err != nil {
		return nil, err
	}
	return pk, nil
}

// WriteTo streams the self-describing encoding of the private key to w
// (io.WriterTo).
func (sk *PrivateKey) WriteTo(w io.Writer) (int64, error) {
	id, err := wireID(sk.params)
	if err != nil {
		return 0, err
	}
	n, err := writeWireHeader(w, wireKindPrivateKey, id)
	if err != nil {
		return n, err
	}
	m, err := sk.inner.WriteBodyTo(w)
	return n + m, err
}

// ReadFrom streams a self-describing private key from r (io.ReaderFrom).
func (sk *PrivateKey) ReadFrom(r io.Reader) (int64, error) {
	p, n, err := readWireHeader(r, wireKindPrivateKey)
	if err != nil {
		return n, err
	}
	if err := checkWireSize("private key", p.inner.PolyBytes()); err != nil {
		return n, err
	}
	inner, m, err := core.ReadPrivateKeyBodyFrom(p.inner, r)
	if err != nil {
		return n + m, fmt.Errorf("ringlwe: %w", err)
	}
	sk.params, sk.inner = p, inner
	return n + m, nil
}

// ReadAnyPrivateKeyFrom streams a self-describing private key from r
// without a params argument.
func ReadAnyPrivateKeyFrom(r io.Reader) (*PrivateKey, error) {
	sk := new(PrivateKey)
	if _, err := sk.ReadFrom(r); err != nil {
		return nil, err
	}
	return sk, nil
}

// WriteTo streams the self-describing encoding of the ciphertext to w
// (io.WriterTo).
func (ct *Ciphertext) WriteTo(w io.Writer) (int64, error) {
	id, err := wireID(ct.params)
	if err != nil {
		return 0, err
	}
	n, err := writeWireHeader(w, wireKindCiphertext, id)
	if err != nil {
		return n, err
	}
	m, err := ct.inner.WriteBodyTo(w)
	return n + m, err
}

// ReadFrom streams a self-describing ciphertext from r (io.ReaderFrom).
// When ct already holds buffers of the header's parameter set — a
// NewCiphertext destination reused across reads — the body lands in them
// and the read allocates nothing; otherwise fresh buffers are allocated.
func (ct *Ciphertext) ReadFrom(r io.Reader) (int64, error) {
	p, n, err := readWireHeader(r, wireKindCiphertext)
	if err != nil {
		return n, err
	}
	if err := checkWireSize("ciphertext", 2*p.inner.PolyBytes()); err != nil {
		return n, err
	}
	inner := ct.inner
	if inner == nil || ct.params.inner != p.inner {
		inner = core.NewCiphertext(p.inner)
	}
	m, err := core.ReadCiphertextBodyFrom(inner, r)
	if err != nil {
		return n + m, fmt.Errorf("ringlwe: %w", err)
	}
	ct.params, ct.inner = p, inner
	return n + m, nil
}

// ReadAnyCiphertextFrom streams a self-describing ciphertext from r
// without a params argument.
func ReadAnyCiphertextFrom(r io.Reader) (*Ciphertext, error) {
	ct := new(Ciphertext)
	if _, err := ct.ReadFrom(r); err != nil {
		return nil, err
	}
	return ct, nil
}

// WriteTo streams the self-describing encoding of the encapsulation blob
// to w (io.WriterTo). See EncapsulatedKey.AppendBinary for the Custom-set
// ambiguity caveat.
func (ek EncapsulatedKey) WriteTo(w io.Writer) (int64, error) {
	id, err := ek.inferWireID()
	if err != nil {
		return 0, err
	}
	n, err := writeWireHeader(w, wireKindEncapsulatedKey, id)
	if err != nil {
		return n, err
	}
	m, err := w.Write(ek)
	return n + int64(m), err
}

// ReadFrom streams a self-describing encapsulation blob from r
// (io.ReaderFrom), leaving the raw Decapsulate-ready bytes in ek and
// reusing its capacity — zero allocations once grown.
func (ek *EncapsulatedKey) ReadFrom(r io.Reader) (int64, error) {
	_, body, n, err := readEncapsulatedFrom(r, ek)
	if err != nil {
		return n, err
	}
	*ek = body
	return n, nil
}

// ReadAnyEncapsulatedKeyFrom streams a self-describing encapsulation blob
// from r, returning the parameter set recovered from the header alongside
// the raw Decapsulate-ready bytes.
func ReadAnyEncapsulatedKeyFrom(r io.Reader) (*Params, EncapsulatedKey, error) {
	var ek EncapsulatedKey
	p, body, _, err := readEncapsulatedFrom(r, &ek)
	if err != nil {
		return nil, nil, err
	}
	return p, body, nil
}

// readEncapsulatedFrom reads header and body into reuse's capacity,
// validating body length and the embedded legacy ciphertext tag against
// the header's parameter set (the same invariants parseEncapsulatedBody
// enforces on the buffered path).
func readEncapsulatedFrom(r io.Reader, reuse *EncapsulatedKey) (*Params, EncapsulatedKey, int64, error) {
	p, n, err := readWireHeader(r, wireKindEncapsulatedKey)
	if err != nil {
		return nil, nil, n, err
	}
	size := p.EncapsulationSize()
	if err := checkWireSize("encapsulation", size); err != nil {
		return nil, nil, n, err
	}
	body := slices.Grow((*reuse)[:0], size)[:size]
	m, err := io.ReadFull(r, body)
	n += int64(m)
	if err != nil {
		return nil, nil, n, fmt.Errorf("ringlwe: reading encapsulation body: %w", err)
	}
	if body[0] != core.LegacyTag(p.inner) {
		return nil, nil, n, fmt.Errorf("ringlwe: encapsulation body carries ciphertext tag %d, want %d for %s", body[0], core.LegacyTag(p.inner), p.Name())
	}
	return p, body, n, nil
}
