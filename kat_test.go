package ringlwe

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// Known-answer tests: the full pipeline — deterministic randomness →
// sampler → NTT → scheme → serialization — is pinned by digests. Any
// change to the bit-pool semantics, the Knuth-Yao tables, the transform
// twiddles or the wire format shows up here immediately. The decrypted
// digest also re-asserts that these specific seeds decrypt correctly
// (message bytes are i·7 mod 256).
var katVectors = []struct {
	params                 string
	seed                   uint64
	pkHash, skHash, ctHash string
	decHash                string
}{
	{"P1", 1, "d88058080a127962", "3268eff174cb4d9d", "3432d17624587b88", "2dfd602a7a260b7a"},
	{"P1", 42, "bf525be753f158a9", "7299b6884eda560b", "772fe423e1342f6a", "2dfd602a7a260b7a"},
	{"P1", 31337, "670b9e669f3ff7cd", "b900cd0025a60737", "46b770f72396bd1f", "2dfd602a7a260b7a"},
	{"P2", 1, "12e20cb411a3d681", "886d8fef24a3f5ac", "4d378573ae578b46", "d8bc63b4fc1156e5"},
	{"P2", 42, "f3078894d840fd1d", "a557a00f39dd6559", "f11559e0db9bfc46", "d8bc63b4fc1156e5"},
	{"P2", 31337, "7a793f435603326b", "2cf8262c385a63b5", "17b90d513879f47d", "d8bc63b4fc1156e5"},
}

func digest8(b []byte) string {
	d := sha256.Sum256(b)
	return hex.EncodeToString(d[:8])
}

func TestKnownAnswerVectors(t *testing.T) {
	params := map[string]*Params{"P1": P1(), "P2": P2()}
	for _, v := range katVectors {
		p := params[v.params]
		s := NewDeterministic(p, v.seed)
		pk, sk, err := s.GenerateKeys()
		if err != nil {
			t.Fatal(err)
		}
		msg := make([]byte, p.MessageSize())
		for i := range msg {
			msg[i] = byte(i * 7)
		}
		ct, err := s.Encrypt(pk, msg)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dec, msg) {
			t.Errorf("%s seed %d: KAT message no longer decrypts cleanly", v.params, v.seed)
		}
		checks := []struct{ name, got, want string }{
			{"public key", digest8(pk.Bytes()), v.pkHash},
			{"private key", digest8(sk.Bytes()), v.skHash},
			{"ciphertext", digest8(ct.Bytes()), v.ctHash},
			{"plaintext", digest8(dec), v.decHash},
		}
		for _, c := range checks {
			if c.got != c.want {
				t.Errorf("%s seed %d: %s digest %s, want %s — the deterministic pipeline changed",
					v.params, v.seed, c.name, c.got, c.want)
			}
		}
	}
}
