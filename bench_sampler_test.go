package ringlwe

import (
	"fmt"
	"testing"
)

// BenchmarkEncryptEngineSampler measures the steady-state workspace
// encrypt path across the full engine × sampler matrix, the end-to-end
// view BENCH_3.json archives: the NTT engine sets the transform cost, the
// sampler backend the error-generation cost, and the two knobs compose
// independently.
func BenchmarkEncryptEngineSampler(b *testing.B) {
	p := P1()
	msg := make([]byte, p.MessageSize())
	for i := range msg {
		msg[i] = byte(i)
	}
	for _, engine := range Engines() {
		if engine == "packed" {
			continue // allocates per transform; not a throughput backend
		}
		for _, smp := range Samplers() {
			b.Run(fmt.Sprintf("%s/%s", engine, smp), func(b *testing.B) {
				s := NewDeterministic(p, 1, WithEngine(engine), WithSampler(smp))
				pk, _, err := s.GenerateKeys()
				if err != nil {
					b.Fatal(err)
				}
				w := s.NewWorkspace()
				ct := NewCiphertext(p)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := w.EncryptInto(ct, pk, msg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
