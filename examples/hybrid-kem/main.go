// Hybrid KEM-DEM: the ring-LWE KEM transports a 256-bit session key (with
// the confirmation-tag retry loop that absorbs the LPR failure rate); an
// AES-CTR + HMAC-SHA256 DEM protects a bulk payload. The same payload is
// then sent through the repository's ECIES-233 baseline, reproducing the
// paper's Table IV comparison as a living program: post-quantum ring-LWE
// versus classical ECC at matched (medium-term) security.
//
//	go run ./examples/hybrid-kem
package main

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"log"
	"time"

	"ringlwe"
	"ringlwe/internal/ecc"
	"ringlwe/internal/rng"
)

func main() {
	payload := bytes.Repeat([]byte("telemetry batch 0042 | "), 200) // ≈ 4.6 KB

	fmt.Println("== ring-LWE hybrid (KEM-DEM) ==")
	rlweBlob, rlweDur := ringLWEHybrid(payload)
	fmt.Printf("payload %d B → wire %d B in %v\n\n", len(payload), len(rlweBlob), rlweDur.Round(time.Microsecond))

	fmt.Println("== ECIES-233 baseline (paper Table IV) ==")
	eciesBlob, eciesDur := eciesBaseline(payload)
	fmt.Printf("payload %d B → wire %d B in %v\n\n", len(payload), len(eciesBlob), eciesDur.Round(time.Microsecond))

	fmt.Printf("wall-clock ratio (ECIES/ring-LWE): %.1f×\n", float64(eciesDur)/float64(rlweDur))
	fmt.Println("paper's cycle-based ratio on microcontrollers: ≈ 45× (5 523 280 vs 121 166 cycles)")
}

// ringLWEHybrid runs the full KEM-DEM flow and returns the wire blob and
// the sender-side public-key operation time (encapsulation only, matching
// how the paper prices ECIES by its point multiplications).
func ringLWEHybrid(payload []byte) ([]byte, time.Duration) {
	params := ringlwe.P1()
	receiver := ringlwe.New(params)
	pub, priv, err := receiver.GenerateKeys()
	if err != nil {
		log.Fatal(err)
	}
	sender := ringlwe.New(params)

	// Encapsulate-with-retry: the confirmation tag turns the LPR failure
	// rate (≈0.8% at P1) into a detected error. One round trip per retry;
	// expected retries per session ≈ 0.008.
	var blob ringlwe.EncapsulatedKey
	var key [ringlwe.SharedKeySize]byte
	start := time.Now()
	for attempt := 1; ; attempt++ {
		blob, key, err = sender.Encapsulate(pub)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := receiver.Decapsulate(priv, blob); err == nil {
			break
		} else if !errors.Is(err, ringlwe.ErrDecapsulation) {
			log.Fatal(err)
		}
		fmt.Printf("(decapsulation failure on attempt %d — retrying, as the protocol is designed to)\n", attempt)
	}
	encapDur := time.Since(start)

	ct, tag := seal(key, payload)
	wire := append(append([]byte(nil), blob...), append(ct, tag...)...)

	// Receiver side: decapsulate and open.
	rkey, err := receiver.Decapsulate(priv, blob)
	if err != nil {
		log.Fatal(err)
	}
	got, ok := open(rkey, ct, tag)
	if !ok || !bytes.Equal(got, payload) {
		log.Fatal("hybrid round trip failed")
	}
	fmt.Printf("session key transported (%d B KEM blob), payload authenticated and recovered\n", len(blob))
	return wire, encapDur
}

func eciesBaseline(payload []byte) ([]byte, time.Duration) {
	curve := ecc.K233()
	base := curve.GeneratePoint(rng.NewCryptoSource())
	kp, err := ecc.GenerateKeyPair(curve, base.X, rng.NewCryptoSource())
	if err != nil {
		log.Fatal(err)
	}
	src := rng.NewCryptoSource()
	start := time.Now()
	wire, err := ecc.Encrypt(kp, payload, src)
	if err != nil {
		log.Fatal(err)
	}
	dur := time.Since(start)
	got, err := ecc.Decrypt(kp, wire)
	if err != nil || !bytes.Equal(got, payload) {
		log.Fatal("ECIES round trip failed")
	}
	fmt.Println("ECIES session established (two 233-bit point multiplications on the sender)")
	return wire, dur
}

// seal is the DEM: AES-128-CTR + HMAC-SHA256 (encrypt-then-MAC).
func seal(key [32]byte, payload []byte) (ct, tag []byte) {
	block, err := aes.NewCipher(key[:16])
	if err != nil {
		panic(err)
	}
	var iv [16]byte
	ct = make([]byte, len(payload))
	cipher.NewCTR(block, iv[:]).XORKeyStream(ct, payload)
	mac := hmac.New(sha256.New, key[16:])
	mac.Write(ct)
	return ct, mac.Sum(nil)
}

func open(key [32]byte, ct, tag []byte) ([]byte, bool) {
	mac := hmac.New(sha256.New, key[16:])
	mac.Write(ct)
	if !hmac.Equal(mac.Sum(nil), tag) {
		return nil, false
	}
	block, err := aes.NewCipher(key[:16])
	if err != nil {
		panic(err)
	}
	var iv [16]byte
	out := make([]byte, len(ct))
	cipher.NewCTR(block, iv[:]).XORKeyStream(out, ct)
	return out, true
}
