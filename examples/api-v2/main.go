// Command api-v2 tours the three layers of the redesigned public API:
// capability interfaces, composable security profiles, and the
// self-describing wire format.
//
//	go run ./examples/api-v2
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"

	"ringlwe"
)

// transportKey is written against the KEM capability interface: it does
// not care whether the implementation is a Scheme, a Workspace, or a
// test double.
func transportKey(kem ringlwe.KEM, pub *ringlwe.PublicKey, priv *ringlwe.PrivateKey) [ringlwe.SharedKeySize]byte {
	for {
		blob, senderKey, err := kem.Encapsulate(pub)
		if err != nil {
			log.Fatal(err)
		}
		receiverKey, err := kem.Decapsulate(priv, blob)
		if errors.Is(err, ringlwe.ErrDecapsulation) {
			continue // intrinsic LPR failure: retry with a fresh encapsulation
		}
		if err != nil {
			log.Fatal(err)
		}
		if senderKey != receiverKey {
			log.Fatal("keys disagree")
		}
		return receiverKey
	}
}

func main() {
	params := ringlwe.P1()

	// Layer 2: profiles. One scheme per security/performance point; all
	// three interoperate — same cryptosystem, different instruction traces.
	fast := ringlwe.New(params, ringlwe.Fast())
	reference := ringlwe.New(params, ringlwe.Reference())
	constTime := ringlwe.New(params, ringlwe.ConstantTime())
	for _, s := range []*ringlwe.Scheme{fast, reference, constTime} {
		p := s.Profile()
		fmt.Printf("profile %-13s engine=%-8s sampler=%-10s constant-time-decode=%v\n",
			p.Name(), p.Engine, p.Sampler, p.ConstantTimeDecode)
	}

	// Layer 1: capability interfaces. Keys from the reference profile,
	// session keys transported through whichever implementation.
	pub, priv, err := reference.GenerateKeys()
	if err != nil {
		log.Fatal(err)
	}
	_ = transportKey(fast, pub, priv)                // Scheme as KEM
	_ = transportKey(fast.NewWorkspace(), pub, priv) // Workspace as KEM
	fmt.Println("session keys transported via Scheme and Workspace KEMs")

	// Cross-profile interop: the constant-time scheme encrypts to the
	// reference keys, and both decoders agree.
	msg := make([]byte, params.MessageSize())
	copy(msg, "profiles interoperate")
	ct, err := constTime.Encrypt(pub, msg)
	if err != nil {
		log.Fatal(err)
	}
	a, err := constTime.Decrypt(priv, ct) // branchless decoder
	if err != nil {
		log.Fatal(err)
	}
	b, err := reference.Decrypt(priv, ct) // branching decoder
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("constant-time and reference decrypts agree:", bytes.Equal(a, b))

	// Layer 3: the self-describing wire format. The blob carries its
	// parameter set; the receiving side never asks "P1 or P2?".
	blob, err := ct.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	back, err := ringlwe.ParseAnyCiphertext(blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ciphertext wire blob: %d bytes, self-identifies as %s\n",
		len(blob), back.Params().Name())
}
