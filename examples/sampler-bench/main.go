// Sampler backend shoot-out: the same encryption workload run under every
// registered discrete-Gaussian sampler, selected at runtime with
// WithSampler, with the per-backend SamplerStats showing where each
// sample was resolved:
//
//	go run ./examples/sampler-bench
//	go run ./examples/sampler-bench -sampler batched-ky -n 2000
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ringlwe"
)

func main() {
	only := flag.String("sampler", "", "run a single backend (default: all registered)")
	rounds := flag.Int("n", 1000, "encryptions per backend")
	flag.Parse()

	params := ringlwe.P1()
	backends := ringlwe.Samplers()
	if *only != "" {
		backends = []string{*only}
	}
	msg := make([]byte, params.MessageSize())
	for i := range msg {
		msg[i] = byte(i)
	}

	fmt.Printf("%d encryptions of %d-byte messages at %s (3·n = %d Gaussian samples each)\n\n",
		*rounds, params.MessageSize(), params.Name(), 3*params.N())
	for _, name := range backends {
		// Backend selection is a construction-time option; everything the
		// schemes produce interoperates regardless of the choice.
		scheme := ringlwe.New(params, ringlwe.WithSampler(name))
		pub, priv, err := scheme.GenerateKeys()
		if err != nil {
			log.Fatal(err)
		}
		ws := scheme.NewWorkspace()
		ct := ringlwe.NewCiphertext(params)

		t0 := time.Now()
		for i := 0; i < *rounds; i++ {
			if err := ws.EncryptInto(ct, pub, msg); err != nil {
				log.Fatal(err)
			}
		}
		dur := time.Since(t0)

		if _, err := priv.Decrypt(ct); err != nil {
			log.Fatal(err)
		}
		samples, lut1, lut2, scans := scheme.SamplerStats()
		fmt.Printf("%-10s  %8.1f µs/encrypt  (%.1f ns of encrypt per sample drawn)\n",
			scheme.Sampler(), float64(dur.Microseconds())/float64(*rounds),
			float64(dur.Nanoseconds())/float64(3*params.N()**rounds))
		fmt.Printf("            stats: %d samples", samples)
		if lut1+lut2+scans > 0 {
			fmt.Printf(" — %.2f%% LUT1, %.2f%% LUT2, %.2f%% scan",
				100*float64(lut1)/float64(samples),
				100*float64(lut2)/float64(samples),
				100*float64(scans)/float64(samples))
		} else {
			fmt.Printf(" — resolved by CDT inversion (no table tiers)")
		}
		fmt.Println()
	}
}
