// Secure channel over TCP: a post-quantum handshake in the style of the
// key-exchange work the paper's Table III compares against ([9], ring-LWE
// key exchange for TLS). A server with a long-term ring-LWE key accepts a
// loopback connection; the client encapsulates a session key through the
// KEM (retrying transparently on intrinsic LPR decryption failures); both
// sides then exchange authenticated, encrypted records.
//
//	go run ./examples/secure-channel
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"ringlwe"
	"ringlwe/internal/protocol"
)

func main() {
	params := ringlwe.P1()

	// Server: long-term KEM key pair (the post-quantum analogue of a TLS
	// server certificate key).
	serverScheme := ringlwe.New(params)
	pk, sk, err := serverScheme.GenerateKeys()
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Printf("server: listening on %s with a %s key (%d B public key)\n",
		ln.Addr(), params.Name(), params.PublicKeySize())

	serverErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			serverErr <- err
			return
		}
		defer conn.Close()
		ch, err := protocol.Server(conn, serverScheme, pk, sk)
		if err != nil {
			serverErr <- err
			return
		}
		fmt.Printf("server: channel established (%d KEM retries)\n", ch.Retries)
		for {
			msg, err := ch.Recv()
			if err != nil {
				serverErr <- err
				return
			}
			if string(msg) == "BYE" {
				serverErr <- ch.Send([]byte("BYE"))
				return
			}
			if err := ch.Send(append([]byte("ack "), msg...)); err != nil {
				serverErr <- err
				return
			}
		}
	}()

	// Client.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	clientScheme := ringlwe.New(params)
	start := time.Now()
	ch, err := protocol.Client(conn, clientScheme, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: handshake done in %v (wire: %d B hello + %d B key + %d B encapsulation)\n",
		time.Since(start).Round(time.Microsecond),
		4, params.PublicKeySize(), params.EncapsulationSize())

	for _, line := range []string{
		"temperature 21.4C",
		"pressure 1013 hPa",
		"door sensor: closed",
	} {
		if err := ch.Send([]byte(line)); err != nil {
			log.Fatal(err)
		}
		reply, err := ch.Recv()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("client: sent %-22q got %q\n", line, reply)
	}
	if err := ch.Send([]byte("BYE")); err != nil {
		log.Fatal(err)
	}
	if _, err := ch.Recv(); err != nil {
		log.Fatal(err)
	}
	if err := <-serverErr; err != nil {
		log.Fatal(err)
	}
	fmt.Println("session closed cleanly")
}
