// Secure channel v2 over TCP: a post-quantum handshake in the style of
// the key-exchange work the paper's Table III compares against ([9],
// ring-LWE key exchange for TLS), upgraded to the negotiated multi-tenant
// protocol.
//
// One server holds a long-term ring-LWE key pair per parameter set (the
// post-quantum analogue of a TLS server certificate per cipher suite) and
// serves them all on one port. Three clients hit it concurrently:
//
//   - a P1 client using the v2 negotiated handshake (the server's first
//     flight is its self-describing public-key blob; the client checks
//     the parameter set in its six-byte header),
//   - a P2 client doing the same against the same port,
//   - a legacy v1 client speaking the original one-byte parameter tag.
//
// The P1 client also rekeys mid-session: after WithRekeyAfter(2) records
// it transparently encapsulates a fresh session key inside the channel
// and both sides roll to new epoch keys.
//
//	go run ./examples/secure-channel
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"ringlwe"
	"ringlwe/internal/protocol"
)

func main() {
	// Server: one tenant per parameter set, each with its own scheme
	// (randomness from a per-scheme AES-CTR DRBG) and long-term key pair.
	srv := protocol.NewServer(protocol.WithHandler(func(ch *protocol.Channel) {
		for {
			msg, err := ch.Recv()
			if err != nil {
				return
			}
			if err := ch.Send(append([]byte("ack "), msg...)); err != nil {
				return
			}
		}
	}))
	for _, p := range []*ringlwe.Params{ringlwe.P1(), ringlwe.P2()} {
		if err := srv.AddParams(p); err != nil {
			log.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	fmt.Printf("server: one port (%s), two parameter sets, v1+v2 accepted\n", ln.Addr())

	var wg sync.WaitGroup
	run := func(label string, dial func(net.Conn) (*protocol.Channel, error), lines []string) {
		defer wg.Done()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		start := time.Now()
		ch, err := dial(conn)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%s: handshake done in %v (negotiated %s, protocol v%d)\n",
			label, time.Since(start).Round(time.Microsecond), ch.Params().Name(), ch.Version())
		for _, line := range lines {
			if err := ch.Send([]byte(line)); err != nil {
				log.Fatalf("%s: %v", label, err)
			}
			reply, err := ch.Recv()
			if err != nil {
				log.Fatalf("%s: %v", label, err)
			}
			fmt.Printf("%s: sent %-24q got %q\n", label, line, reply)
		}
		if ch.Rekeys > 0 {
			fmt.Printf("%s: session rekeyed %d time(s) in-band\n", label, ch.Rekeys)
		}
	}

	wg.Add(3)
	go run("client[P1,v2]", func(c net.Conn) (*protocol.Channel, error) {
		return protocol.Client(c, ringlwe.New(ringlwe.P1()), protocol.WithRekeyAfter(2))
	}, []string{"temperature 21.4C", "pressure 1013 hPa", "door sensor: closed", "humidity 40%"})
	go run("client[P2,v2]", func(c net.Conn) (*protocol.Channel, error) {
		return protocol.Client(c, ringlwe.New(ringlwe.P2()))
	}, []string{"firmware hash f00d...", "uptime 312d"})
	go run("client[P1,v1]", func(c net.Conn) (*protocol.Channel, error) {
		return protocol.ClientV1(c, ringlwe.New(ringlwe.P1()))
	}, []string{"legacy node says hi"})
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server stats:", srv.Stats())
	fmt.Println("session closed cleanly")
}
