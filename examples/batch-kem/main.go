// Batch KEM demo: one server key pair, many session keys at once. The
// batch calls fan out over the scheme's bounded worker pool of pooled
// workspaces, so this is also the minimal throughput harness for the
// concurrent layer:
//
//	go run ./examples/batch-kem
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"ringlwe"
)

const batch = 256

func main() {
	params := ringlwe.P1()
	scheme := ringlwe.New(params)
	pub, priv, err := scheme.GenerateKeys()
	if err != nil {
		log.Fatal(err)
	}

	t0 := time.Now()
	blobs, senderKeys, err := scheme.EncapsulateBatch(pub, batch)
	if err != nil {
		log.Fatal(err)
	}
	encapDur := time.Since(t0)

	t0 = time.Now()
	receiverKeys, errs := scheme.DecapsulateBatch(priv, blobs)
	decapDur := time.Since(t0)

	ok, retry := 0, 0
	for i := range blobs {
		switch {
		case errs[i] == nil:
			if receiverKeys[i] != senderKeys[i] {
				log.Fatalf("blob %d: keys disagree", i)
			}
			ok++
		case errors.Is(errs[i], ringlwe.ErrDecapsulation):
			retry++ // intrinsic LPR failure: the sender encapsulates again
		default:
			log.Fatalf("blob %d: %v", i, errs[i])
		}
	}

	fmt.Printf("%d encapsulations in %v (%.0f/s), %d decapsulations in %v (%.0f/s)\n",
		batch, encapDur.Round(time.Millisecond), batch/encapDur.Seconds(),
		batch, decapDur.Round(time.Millisecond), batch/decapDur.Seconds())
	fmt.Printf("%d keys confirmed, %d flagged for retry (intrinsic failure rate ≈0.8%%)\n", ok, retry)

	// Raw message batches work the same way.
	msgs := make([][]byte, 64)
	for i := range msgs {
		msgs[i] = make([]byte, params.MessageSize())
		msgs[i][0] = byte(i)
	}
	cts, err := scheme.EncryptBatch(pub, msgs)
	if err != nil {
		log.Fatal(err)
	}
	plain, err := scheme.DecryptBatch(priv, cts)
	if err != nil {
		log.Fatal(err)
	}
	match := 0
	for i := range msgs {
		if plain[i][0] == msgs[i][0] {
			match++
		}
	}
	fmt.Printf("encrypt/decrypt batch: %d/%d first bytes round-tripped\n", match, len(msgs))
}
