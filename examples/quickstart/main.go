// Quickstart: generate a key pair, encrypt a message, decrypt it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ringlwe"
)

func main() {
	// P1 is the paper's medium-term security set: n=256, q=7681. One
	// plaintext carries 32 bytes (one bit per ring coefficient).
	params := ringlwe.P1()
	scheme := ringlwe.New(params) // crypto/rand-backed

	pub, priv, err := scheme.GenerateKeys()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parameter set %s: n=%d q=%d σ=%.3f\n",
		params.Name(), params.N(), params.Q(), params.Sigma())
	fmt.Printf("public key %d B, private key %d B, ciphertext %d B\n",
		params.PublicKeySize(), params.PrivateKeySize(), params.CiphertextSize())

	msg := make([]byte, params.MessageSize())
	copy(msg, "ring-LWE on a microcontroller!")

	ct, err := scheme.Encrypt(pub, msg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encrypted %d-byte message → %d-byte ciphertext\n",
		len(msg), len(ct.Bytes()))

	got, err := priv.Decrypt(ct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decrypted: %q\n", string(got[:30]))

	// The scheme has a small intrinsic failure probability — the price of
	// the compact LPR construction. For key transport, use the KEM, which
	// detects failures (see examples/hybrid-kem).
	perBit, perMsg := params.FailureRate()
	fmt.Printf("analytic failure rate: %.2e per bit, %.2e per message\n", perBit, perMsg)
}
