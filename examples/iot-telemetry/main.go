// IoT telemetry: the scenario that motivates the paper — a constrained
// device ("these devices handle sensitive information and are sometimes
// critical for the safety of human lives", §I) encrypting sensor frames to
// a gateway public key. The example runs the real scheme and, in parallel,
// the Cortex-M4F cycle model, so each frame is annotated with the cycle
// and energy budget it would consume on the paper's 168 MHz STM32F407.
//
//	go run ./examples/iot-telemetry
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"ringlwe"
	"ringlwe/internal/core"
	"ringlwe/internal/m4"
	"ringlwe/internal/rng"
)

// frame is a 12-byte sensor reading: id, sequence, temperature (milli-°C),
// pressure (Pa).
type frame struct {
	sensor uint16
	seq    uint16
	temp   int32
	press  uint32
}

func (f frame) pack(buf []byte) {
	binary.LittleEndian.PutUint16(buf[0:], f.sensor)
	binary.LittleEndian.PutUint16(buf[2:], f.seq)
	binary.LittleEndian.PutUint32(buf[4:], uint32(f.temp))
	binary.LittleEndian.PutUint32(buf[8:], f.press)
}

const (
	clockHz = 168e6 // STM32F407 max clock
	// Cortex-M4F running from flash at full speed draws around 40 mA at
	// 3.3 V on this family; good enough for a budget illustration.
	powerWatts = 0.132
)

func main() {
	params := ringlwe.P1()
	scheme := ringlwe.New(params)
	gatewayPub, gatewayPriv, err := scheme.GenerateKeys()
	if err != nil {
		log.Fatal(err)
	}

	// The device-side cycle model: same scheme, same dataflow, charged
	// with Cortex-M4F instruction prices.
	mach := m4.New()
	deviceScheme, err := m4.NewScheme(mach, core.P1(), rng.NewCryptoSource())
	if err != nil {
		log.Fatal(err)
	}
	devicePub, _ := deviceScheme.KeyGen()
	keygenCycles := mach.Cycles
	_ = devicePub

	fmt.Printf("gateway: %s key pair ready (device keygen would cost %d cycles ≈ %.2f ms)\n\n",
		params.Name(), keygenCycles, 1000*float64(keygenCycles)/clockHz)

	readings := []frame{
		{sensor: 0x0101, seq: 1, temp: 21_350, press: 101_325},
		{sensor: 0x0101, seq: 2, temp: 21_400, press: 101_298},
		{sensor: 0x0207, seq: 1, temp: -4_020, press: 99_710},
		{sensor: 0x0207, seq: 2, temp: -4_050, press: 99_702},
	}

	var totalCycles uint64
	for _, r := range readings {
		msg := make([]byte, params.MessageSize())
		r.pack(msg)

		// Real encryption (what actually protects the frame).
		ct, err := scheme.Encrypt(gatewayPub, msg)
		if err != nil {
			log.Fatal(err)
		}

		// Modeled cost of the same operation on the device.
		mach.Reset()
		refPk := &core.PublicKey{}
		*refPk = *mustInternalPK(gatewayPub)
		deviceScheme.Encrypt(refPk, msg)
		cycles := mach.Cycles
		totalCycles += cycles

		// Gateway-side decryption.
		got, err := gatewayPriv.Decrypt(ct)
		if err != nil {
			log.Fatal(err)
		}
		var back frame
		back.sensor = binary.LittleEndian.Uint16(got[0:])
		back.seq = binary.LittleEndian.Uint16(got[2:])
		back.temp = int32(binary.LittleEndian.Uint32(got[4:]))
		back.press = binary.LittleEndian.Uint32(got[8:])

		status := "ok"
		if back != r {
			status = "DECRYPTION FAILURE (retransmit)"
		}
		ms := 1000 * float64(cycles) / clockHz
		uj := 1e6 * powerWatts * float64(cycles) / clockHz
		fmt.Printf("sensor %#04x seq %d: %6.2f °C %7d Pa → %4d B ciphertext  "+
			"[%7d cycles ≈ %.2f ms ≈ %.0f µJ] %s\n",
			r.sensor, r.seq, float64(r.temp)/1000, r.press, len(ct.Bytes()),
			cycles, ms, uj, status)
	}

	fmt.Printf("\n4 frames: %d modeled device cycles (paper: 121 166 per encryption)\n", totalCycles)
	fmt.Printf("at %d fps a 168 MHz device would spend %.2f%% of its cycles on encryption\n",
		10, 100*float64(totalCycles/4*10)/clockHz)
}

// mustInternalPK converts the public-API key into the internal
// representation the cycle model operates on. Examples live inside the
// module, so they may reach the internal packages; external users would
// stay on the ringlwe API.
func mustInternalPK(pk *ringlwe.PublicKey) *core.PublicKey {
	inner, err := core.ParsePublicKey(core.P1(), pk.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	return inner
}
