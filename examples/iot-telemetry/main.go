// IoT telemetry over the encrypted-aggregation service: the scenario
// that motivates the paper — constrained devices ("these devices handle
// sensitive information and are sometimes critical for the safety of
// human lives", §I) reporting sensor frames through an untrusted
// aggregation point.
//
// Each sensor encrypts its frame under the fleet owner's A1 public key
// and submits it over its own secure channel to an in-process
// aggregation server (internal/agg). The server folds the submissions
// into one accumulator in the NTT domain — it never holds a key that
// could decrypt a single reading — and the owner retrieves ONE aggregate
// ciphertext and decrypts the whole fleet's report from it.
//
// The trick that makes XOR-aggregation useful here is slotting: sensor i
// writes its 4-byte frame into byte slot i of the 32-byte message and
// zeroes the rest. XOR of disjoint slots is concatenation, so the
// decrypted aggregate is simply every sensor's frame side by side, while
// the aggregation server only ever saw ciphertexts.
//
//	go run ./examples/iot-telemetry
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"net"
	"sync"

	"ringlwe"
	"ringlwe/internal/agg"
	"ringlwe/internal/protocol"
)

// frame is one sensor's 4-byte slot: temperature (centi-°C, signed),
// battery (percent) and an alarm bit mask.
type frame struct {
	temp    int16
	battery uint8
	alarms  uint8
}

const slotSize = 4

func (f frame) pack(slot []byte) {
	binary.LittleEndian.PutUint16(slot[0:], uint16(f.temp))
	slot[2] = f.battery
	slot[3] = f.alarms
}

func unpack(slot []byte) frame {
	return frame{
		temp:    int16(binary.LittleEndian.Uint16(slot[0:])),
		battery: slot[2],
		alarms:  slot[3],
	}
}

func main() {
	params := ringlwe.A1() // the aggregation-tuned set: 26-addend noise budget
	sensors := params.MessageSize() / slotSize

	// The fleet owner's data key pair. The aggregation server never sees
	// the private key — transport security (the channel KEM keys) and
	// data security (this pair) are separate key material.
	scheme := ringlwe.New(params)
	ownerPub, ownerPriv, err := scheme.GenerateKeys()
	if err != nil {
		log.Fatal(err)
	}

	// The aggregation server: a sharded secure-channel server whose
	// handler is the aggregation engine (what rlwe-aggd runs).
	eng := agg.New(2)
	srv := protocol.NewServer(protocol.WithHandler(eng.Handle), protocol.WithShards(2))
	eng.Instrument(srv.Metrics())
	if err := srv.AddParams(params); err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.ServeListeners()
	defer srv.Close()

	// The owner opens its own channel, creates the stream, and keeps the
	// token; sensors get the stream ID only.
	ownerConn, err := net.Dial("tcp", addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer ownerConn.Close()
	ownerCh, err := protocol.Client(ownerConn, scheme)
	if err != nil {
		log.Fatal(err)
	}
	owner := agg.NewClient(ownerCh)
	token := [agg.TokenSize]byte{'f', 'l', 'e', 'e', 't', '-', '0', '1'}
	streamID, err := owner.CreateStream(token)
	if err != nil {
		log.Fatal(err)
	}

	perBit, perMsg := params.AggFailureRate(uint64(sensors))
	fmt.Printf("fleet of %d sensors → stream %d on %s (%s, budget %d addends,\n"+
		"analytic failure at depth %d: %.2g per bit, %.2g per report)\n\n",
		sensors, streamID, addr, params.Name(), params.MaxAddends(), sensors, perBit, perMsg)

	// Eight sensors, each on its own secure channel, each submitting one
	// encrypted slotted frame, concurrently.
	readings := make([]frame, sensors)
	var wg sync.WaitGroup
	for i := 0; i < sensors; i++ {
		readings[i] = frame{
			temp:    int16(2135 - 310*int16(i%3)),
			battery: uint8(100 - 7*i),
			alarms:  uint8(i % 2), // odd sensors raise the "door open" bit
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr.String())
			if err != nil {
				log.Fatal(err)
			}
			defer conn.Close()
			ch, err := protocol.Client(conn, scheme)
			if err != nil {
				log.Fatal(err)
			}
			msg := make([]byte, params.MessageSize())
			readings[i].pack(msg[i*slotSize:])
			ct, err := scheme.Encrypt(ownerPub, msg)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := agg.NewClient(ch).SubmitCiphertext(streamID, ct); err != nil {
				log.Fatalf("sensor %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	// One query, one decryption: the whole fleet's report.
	aggregate, err := owner.Query(streamID, token)
	if err != nil {
		log.Fatal(err)
	}
	report, err := scheme.Decrypt(ownerPriv, aggregate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregate: %d addends, %d B ciphertext → one %d B report\n\n",
		aggregate.Addends(), len(aggregate.Bytes()), len(report))
	ok := true
	for i := 0; i < sensors; i++ {
		got := unpack(report[i*slotSize:])
		status := "ok"
		if got != readings[i] {
			status, ok = "MISMATCH", false
		}
		alarm := ""
		if got.alarms != 0 {
			alarm = "  ALARM"
		}
		fmt.Printf("sensor %02d: %6.2f °C  battery %3d%%%s  [%s]\n",
			i, float64(got.temp)/100, got.battery, alarm, status)
	}
	if !ok {
		log.Fatal("aggregate report does not match the submitted readings")
	}
	released, err := owner.Reset(streamID, token)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwindow reset: released %d addends for the next reporting round\n", released)
}
