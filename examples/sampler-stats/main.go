// Sampler statistics: reproduces the paper's Figure 2 curve, reports where
// samples are resolved (LUT1 / LUT2 / bit scan — §III-B5), and compares the
// Knuth-Yao sampler with the CDT and rejection baselines on modeled
// Cortex-M4F cycles and wall-clock time.
//
//	go run ./examples/sampler-stats
package main

import (
	"fmt"
	"log"
	"time"

	"ringlwe/internal/gauss"
	"ringlwe/internal/m4"
	"ringlwe/internal/rng"
)

const samples = 500000

func main() {
	mat := gauss.P1Matrix()
	fmt.Printf("discrete Gaussian σ = %.4f (s = 11.31), matrix %d×%d, %d → %d stored words\n\n",
		mat.Sigma, mat.Rows, mat.Cols, mat.TotalWords(), mat.StoredWords())

	fmt.Println("Figure 2 — P(walk terminates within x levels):")
	cdf := mat.TerminationCDF()
	for lvl := 3; lvl <= 13; lvl++ {
		bar := ""
		for i := 0; i < int(cdf[lvl-1]*40); i++ {
			bar += "▒"
		}
		fmt.Printf("  %2d %s %.4f%%\n", lvl, bar, 100*cdf[lvl-1])
	}
	fmt.Printf("  (paper anchors: 97.27%% at level 8, 99.87%% at level 13)\n\n")

	// Where samples actually resolve.
	ky, err := gauss.NewSampler(mat, rng.NewXorshift128(1))
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	for i := 0; i < samples; i++ {
		ky.SampleInt()
	}
	kyDur := time.Since(t0)
	fmt.Printf("Knuth-Yao with LUTs over %d samples:\n", samples)
	fmt.Printf("  LUT1 hits     %6.2f%%  (one byte of randomness, one table load)\n",
		100*float64(ky.LUT1Hits)/float64(ky.Samples))
	fmt.Printf("  LUT2 hits     %6.2f%%\n", 100*float64(ky.LUT2Hits)/float64(ky.Samples))
	fmt.Printf("  bit scans     %6.2f%%\n\n", 100*float64(ky.ScanResolved)/float64(ky.Samples))

	// Wall-clock and modeled-cycle comparison across samplers.
	type result struct {
		name   string
		dur    time.Duration
		cycles float64 // modeled cycles per sample (Knuth-Yao variants only)
	}
	var results []result
	results = append(results, result{"knuth-yao + LUT (paper)", kyDur, modelCycles(mat, true, gauss.ScanCLZ)})

	clz, err := gauss.NewSampler(mat, rng.NewXorshift128(2), gauss.WithLUT(false))
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, result{"knuth-yao, clz scan", timeSampler(clz), modelCycles(mat, false, gauss.ScanCLZ)})

	basic, err := gauss.NewSampler(mat, rng.NewXorshift128(3), gauss.WithLUT(false), gauss.WithVariant(gauss.ScanBasic))
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, result{"knuth-yao, basic scan", timeSampler(basic), modelCycles(mat, false, gauss.ScanBasic)})

	cdt := gauss.NewCDTSampler(mat, rng.NewXorshift128(4))
	results = append(results, result{"CDT (inversion)", timeSampler(cdt), 0})

	rej := gauss.NewRejectionSampler(mat, rng.NewXorshift128(5))
	results = append(results, result{"rejection", timeSampler(rej), 0})

	fmt.Println("sampler performance:")
	for _, r := range results {
		perSample := float64(r.dur.Nanoseconds()) / samples
		cyc := "      —"
		if r.cycles > 0 {
			cyc = fmt.Sprintf("%7.1f", r.cycles)
		}
		fmt.Printf("  %-26s %6.1f ns/sample   %s modeled M4F cycles/sample\n", r.name, perSample, cyc)
	}
	fmt.Println("\npaper: 28.5 cycles/sample with LUTs; prior software samplers were ≥ 7.6× slower")
}

func timeSampler(s gauss.IntSampler) time.Duration {
	t0 := time.Now()
	for i := 0; i < samples; i++ {
		s.SampleInt()
	}
	return time.Since(t0)
}

// modelCycles runs the cycle-charged sampler for 64k samples and returns
// the per-sample average.
func modelCycles(mat *gauss.Matrix, useLUT bool, v gauss.ScanVariant) float64 {
	mach := m4.New()
	s, err := m4.NewSampler(mach, mat, rng.NewXorshift128(9), useLUT, v)
	if err != nil {
		log.Fatal(err)
	}
	poly := make([]uint32, 1<<16)
	s.SamplePoly(poly, 7681)
	return float64(mach.Cycles) / float64(len(poly))
}
