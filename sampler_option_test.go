package ringlwe

import (
	"bytes"
	"testing"
)

// TestWithSamplerKnuthYaoBitIdentical pins the KAT guarantee of the
// sampler subsystem: selecting the default backend explicitly is
// indistinguishable from not selecting one at all — same seed, byte-equal
// key material and ciphertexts. Combined with kat_test.go (which pins the
// default path to frozen vectors), this proves routing sampling through
// the pluggable engine left every known answer unchanged.
func TestWithSamplerKnuthYaoBitIdentical(t *testing.T) {
	p := P1()
	msg := make([]byte, p.MessageSize())
	for i := range msg {
		msg[i] = byte(i * 29)
	}
	def := NewDeterministic(p, 5150)
	ky := NewDeterministic(p, 5150, WithSampler("knuth-yao"))
	if def.Sampler() != "knuth-yao" {
		t.Fatalf("default sampler = %q, want knuth-yao", def.Sampler())
	}
	pk1, sk1, err := def.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	pk2, sk2, err := ky.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pk1.Bytes(), pk2.Bytes()) || !bytes.Equal(sk1.Bytes(), sk2.Bytes()) {
		t.Fatal("explicit knuth-yao key material differs from the default path")
	}
	ct1, err := def.Encrypt(pk1, msg)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := ky.Encrypt(pk2, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ct1.Bytes(), ct2.Bytes()) {
		t.Fatal("explicit knuth-yao ciphertext differs from the default path")
	}
}

// flippedBits counts differing bits; the scheme's intrinsic failure rate
// allows a stray flip per message, which must not fail the interop tests.
func flippedBits(a, b []byte) int {
	n := 0
	for i := range a {
		d := a[i] ^ b[i]
		for ; d != 0; d &= d - 1 {
			n++
		}
	}
	return n
}

// TestWithSamplerRoundTrip proves every registered backend produces valid
// encryptions: keys generated, messages sealed and opened under each
// backend, on both public parameter sets.
func TestWithSamplerRoundTrip(t *testing.T) {
	for _, p := range []*Params{P1(), P2()} {
		msg := make([]byte, p.MessageSize())
		for i := range msg {
			msg[i] = byte(3*i + 1)
		}
		for i, name := range Samplers() {
			s := NewDeterministic(p, uint64(400+i), WithSampler(name))
			if s.Sampler() != name {
				t.Fatalf("Sampler() = %q, want %q", s.Sampler(), name)
			}
			pk, sk, err := s.GenerateKeys()
			if err != nil {
				t.Fatal(err)
			}
			ct, err := s.Encrypt(pk, msg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sk.Decrypt(ct)
			if err != nil {
				t.Fatal(err)
			}
			if flips := flippedBits(got, msg); flips > 2 {
				t.Errorf("%s/%s: decryption flipped %d bits", p.Name(), name, flips)
			}
		}
	}
}

// TestWithSamplerInterop proves sampler choice is a per-scheme concern
// with no wire footprint: ciphertexts sealed under one backend open with
// key material generated under another.
func TestWithSamplerInterop(t *testing.T) {
	p := P1()
	msg := make([]byte, p.MessageSize())
	for i := range msg {
		msg[i] = byte(i)
	}
	gen := NewDeterministic(p, 808, WithSampler("cdt"))
	pk, sk, err := gen.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	pkShared, err := ParsePublicKey(p, pk.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range Samplers() {
		enc := NewDeterministic(p, uint64(900+i), WithSampler(name))
		ct, err := enc.Encrypt(pkShared, msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if flips := flippedBits(got, msg); flips > 2 {
			t.Errorf("encrypt under %s, decrypt under cdt keys: %d bits flipped", name, flips)
		}
	}
}

// TestWithSamplerUnknownPanics pins construction behaviour on a bad name,
// mirroring the engine option.
func TestWithSamplerUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with unknown sampler did not panic")
		}
	}()
	New(P1(), WithSampler("definitely-not-a-sampler"))
}

// TestSamplerStatsAllBackends checks the atomic stats aggregation works
// for every backend — Samples advances by 3n per encryption on each — and
// that the LUT counters stay zero for the table-free cdt backend.
func TestSamplerStatsAllBackends(t *testing.T) {
	p := P1()
	msg := make([]byte, p.MessageSize())
	for i, name := range Samplers() {
		s := NewDeterministic(p, uint64(50+i), WithSampler(name))
		pk, _, err := s.GenerateKeys()
		if err != nil {
			t.Fatal(err)
		}
		base, _, _, _ := s.SamplerStats()
		const rounds = 5
		for r := 0; r < rounds; r++ {
			if _, err := s.Encrypt(pk, msg); err != nil {
				t.Fatal(err)
			}
		}
		samples, lut1, lut2, scans := s.SamplerStats()
		want := base + uint64(rounds*3*p.N())
		if samples != want {
			t.Errorf("%s: samples = %d after %d encryptions, want %d", name, samples, rounds, want)
		}
		resolved := lut1 + lut2 + scans
		if name == "cdt" {
			if resolved != 0 {
				t.Errorf("cdt: resolution counters = %d, want 0", resolved)
			}
		} else if resolved != samples {
			t.Errorf("%s: lut1+lut2+scans = %d, want %d", name, resolved, samples)
		}
	}
}

// TestWorkspaceSamplerZeroAlloc pins the steady-state encrypt path at zero
// allocations under every sampler backend (the CI allocation-regression
// gate runs -run ZeroAlloc).
func TestWorkspaceSamplerZeroAlloc(t *testing.T) {
	p := P1()
	msg := make([]byte, p.MessageSize())
	for i, name := range Samplers() {
		s := NewDeterministic(p, uint64(60+i), WithSampler(name))
		pk, _, err := s.GenerateKeys()
		if err != nil {
			t.Fatal(err)
		}
		w := s.NewWorkspace()
		ct := NewCiphertext(p)
		if err := w.EncryptInto(ct, pk, msg); err != nil {
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(100, func() {
			if err := w.EncryptInto(ct, pk, msg); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: EncryptInto allocates %.1f/op, want 0", name, n)
		}
	}
}
