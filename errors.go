package ringlwe

import (
	"errors"
	"fmt"
)

// ErrParamsMismatch is the sentinel every cross-parameter-set error in
// this package wraps: a key, ciphertext or buffer created under one
// parameter set was used with a scheme, workspace or object of another.
// Test with errors.Is; the wrapped message names the offending object.
var ErrParamsMismatch = errors.New("ringlwe: parameter set mismatch")

// paramsMismatch builds the uniform cross-parameter-set error: one
// sentinel wrapped at every check site, with the offending object named in
// the text so logs stay diagnosable.
func paramsMismatch(what string) error {
	return fmt.Errorf("%w: %s belongs to a different parameter set", ErrParamsMismatch, what)
}
