package ringlwe

import (
	"crypto/subtle"
	"fmt"

	"ringlwe/internal/core"
)

// Workspace is a per-goroutine encryption context over a shared Scheme: a
// private Knuth-Yao sampler and bit pool (forked off the scheme's
// randomness source) plus preallocated scratch, so the steady-state
// EncryptInto / DecryptInto / Decapsulate path allocates nothing and many
// workspaces encrypt concurrently without contending.
//
// A Workspace is not safe for concurrent use; the Scheme and its keys are.
// Create one per goroutine with Scheme.NewWorkspace, or borrow from the
// scheme's pool with AcquireWorkspace/ReleaseWorkspace (what the batch
// methods and the protocol layer do).
type Workspace struct {
	params *Params
	scheme *Scheme
	inner  *core.Workspace

	// ctScratch and msgBuf serve the KEM path: the parsed (or freshly
	// built) ciphertext and the transported seed, reused across calls.
	ctScratch *core.Ciphertext
	msgBuf    []byte
}

// NewWorkspace forks an independent workspace off the scheme's randomness
// source. Safe to call concurrently; cheap (the parameter tables, twiddle
// factors and sampler LUTs are shared read-only).
func (s *Scheme) NewWorkspace() *Workspace {
	ws, err := s.inner.NewWorkspace()
	if err != nil {
		// Workspace construction over a validated Scheme cannot fail.
		panic("ringlwe: " + err.Error())
	}
	return &Workspace{
		params:    s.params,
		scheme:    s,
		inner:     ws,
		ctScratch: core.NewCiphertext(s.params.inner),
		msgBuf:    make([]byte, s.params.MessageSize()),
	}
}

// AcquireWorkspace borrows a workspace from the scheme's internal pool,
// forking a fresh one when the pool is empty. Pair with ReleaseWorkspace.
func (s *Scheme) AcquireWorkspace() *Workspace { return s.pool.Get().(*Workspace) }

// ReleaseWorkspace returns a workspace obtained from AcquireWorkspace to
// the pool. The workspace must not be used afterwards. Workspaces of a
// different scheme are ignored.
func (s *Scheme) ReleaseWorkspace(w *Workspace) {
	if w.scheme == s {
		s.pool.Put(w)
	}
}

// Params returns the workspace's parameter set.
func (w *Workspace) Params() *Params { return w.params }

// Encrypt seals a MessageSize-byte message to pk into a fresh ciphertext.
func (w *Workspace) Encrypt(pk *PublicKey, msg []byte) (*Ciphertext, error) {
	ct := NewCiphertext(w.params)
	if err := w.EncryptInto(ct, pk, msg); err != nil {
		return nil, err
	}
	return ct, nil
}

// EncryptInto seals msg to pk into a caller-owned ciphertext (see
// NewCiphertext), allocating nothing in steady state.
func (w *Workspace) EncryptInto(ct *Ciphertext, pk *PublicKey, msg []byte) error {
	if pk.params.inner != w.params.inner {
		return paramsMismatch("public key")
	}
	if ct.params.inner != w.params.inner {
		return paramsMismatch("ciphertext buffer")
	}
	return w.inner.EncryptInto(ct.inner, pk.inner, msg)
}

// Decrypt opens ct with sk into a fresh message buffer.
func (w *Workspace) Decrypt(sk *PrivateKey, ct *Ciphertext) ([]byte, error) {
	out := make([]byte, w.params.MessageSize())
	if err := w.DecryptInto(out, sk, ct); err != nil {
		return nil, err
	}
	return out, nil
}

// DecryptInto opens ct with sk into a caller-owned MessageSize-byte buffer,
// allocating nothing. Note the scheme's intrinsic failure rate; use the KEM
// interface when transporting keys.
func (w *Workspace) DecryptInto(dst []byte, sk *PrivateKey, ct *Ciphertext) error {
	if sk.params.inner != w.params.inner {
		return paramsMismatch("private key")
	}
	if ct.params.inner != w.params.inner {
		return paramsMismatch("ciphertext")
	}
	return w.inner.DecryptInto(dst, sk.inner, ct.inner)
}

// Encapsulate transports a fresh random session key to pk, reusing the
// workspace's scratch; only the returned wire blob is allocated.
func (w *Workspace) Encapsulate(pk *PublicKey) (EncapsulatedKey, [SharedKeySize]byte, error) {
	var zero [SharedKeySize]byte
	if pk.params.inner != w.params.inner {
		return nil, zero, paramsMismatch("public key")
	}
	seed := w.msgBuf
	w.inner.FillRandom(seed)
	if err := w.inner.EncryptInto(w.ctScratch, pk.inner, seed); err != nil {
		return nil, zero, err
	}
	ctLen := w.params.CiphertextSize()
	blob := make([]byte, ctLen+confirmTagSize)
	if err := w.ctScratch.MarshalInto(blob[:ctLen]); err != nil {
		return nil, zero, err
	}
	tag := kemTag(seed)
	copy(blob[ctLen:], tag[:])
	return blob, kemKey(seed), nil
}

// Decapsulate recovers the session key from an encapsulation blob,
// verifying the confirmation tag, with all polynomial work in workspace
// scratch. It returns ErrDecapsulation when the plaintext does not confirm
// — wrong key material or an intrinsic LPR decryption failure; the peer
// should encapsulate again.
func (w *Workspace) Decapsulate(sk *PrivateKey, blob EncapsulatedKey) ([SharedKeySize]byte, error) {
	var zero [SharedKeySize]byte
	if sk.params.inner != w.params.inner {
		return zero, paramsMismatch("private key")
	}
	ctLen := w.params.CiphertextSize()
	if len(blob) != ctLen+confirmTagSize {
		return zero, fmt.Errorf("ringlwe: encapsulation blob is %d bytes, want %d", len(blob), ctLen+confirmTagSize)
	}
	if err := core.ParseCiphertextInto(w.ctScratch, blob[:ctLen]); err != nil {
		return zero, fmt.Errorf("ringlwe: %w", err)
	}
	if err := w.inner.DecryptInto(w.msgBuf, sk.inner, w.ctScratch); err != nil {
		return zero, err
	}
	tag := kemTag(w.msgBuf)
	if subtle.ConstantTimeCompare(tag[:], blob[ctLen:]) != 1 {
		return zero, ErrDecapsulation
	}
	return kemKey(w.msgBuf), nil
}

// GenerateKeys creates a key pair from the workspace's randomness stream.
func (w *Workspace) GenerateKeys() (*PublicKey, *PrivateKey, error) {
	pk, sk, err := w.inner.GenerateKeys()
	if err != nil {
		return nil, nil, err
	}
	return &PublicKey{params: w.params, inner: pk},
		&PrivateKey{params: w.params, inner: sk}, nil
}
