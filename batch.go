package ringlwe

import (
	"ringlwe/internal/core"
)

// Batch operations: concurrency-safe on a shared Scheme. Each call drives
// the bounded worker pool of internal/core (GOMAXPROCS workers at most,
// one pooled workspace per worker), so N-item batches pay workspace setup
// at most once per worker and the per-item crypto path allocates only its
// outputs.

// runBatch runs fn over indices [0, n), one pooled top-level workspace per
// worker; per-item failures are reported by fn writing into caller-owned
// slices, batch-level failures via fn's returned error (first one wins).
func (s *Scheme) runBatch(n int, fn func(w *Workspace, i int) error) error {
	return core.ParallelFor(n, 0, func() (func(i int) error, func()) {
		w := s.AcquireWorkspace()
		return func(i int) error { return fn(w, i) }, func() { s.ReleaseWorkspace(w) }
	})
}

// EncryptBatch encrypts every message to pk concurrently; ciphertext i
// corresponds to msgs[i]. Safe to call from multiple goroutines at once.
func (s *Scheme) EncryptBatch(pk *PublicKey, msgs [][]byte) ([]*Ciphertext, error) {
	if pk.params.inner != s.params.inner {
		return nil, paramsMismatch("public key")
	}
	inner, err := s.inner.EncryptBatch(pk.inner, msgs, 0)
	if err != nil {
		return nil, err
	}
	cts := make([]*Ciphertext, len(inner))
	for i, ct := range inner {
		cts[i] = &Ciphertext{params: s.params, inner: ct}
	}
	return cts, nil
}

// DecryptBatch decrypts every ciphertext with sk concurrently; message i
// corresponds to cts[i].
func (s *Scheme) DecryptBatch(sk *PrivateKey, cts []*Ciphertext) ([][]byte, error) {
	if sk.params.inner != s.params.inner {
		return nil, paramsMismatch("private key")
	}
	inner := make([]*core.Ciphertext, len(cts))
	for i, ct := range cts {
		if ct.params.inner != s.params.inner {
			return nil, paramsMismatch("ciphertext")
		}
		inner[i] = ct.inner
	}
	return s.inner.DecryptBatch(sk.inner, inner, 0)
}

// EncapsulateBatch produces n independent encapsulations to pk
// concurrently: blob i transports key i.
func (s *Scheme) EncapsulateBatch(pk *PublicKey, n int) ([]EncapsulatedKey, [][SharedKeySize]byte, error) {
	if pk.params.inner != s.params.inner {
		return nil, nil, paramsMismatch("public key")
	}
	blobs := make([]EncapsulatedKey, n)
	keys := make([][SharedKeySize]byte, n)
	err := s.runBatch(n, func(w *Workspace, i int) error {
		blob, key, err := w.Encapsulate(pk)
		if err != nil {
			return err
		}
		blobs[i], keys[i] = blob, key
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return blobs, keys, nil
}

// DecapsulateBatch recovers the session key of every blob concurrently.
// Failures are per item — errs[i] is nil on success, ErrDecapsulation on a
// confirmation failure (wrong key material or an intrinsic LPR decryption
// failure; the peer should encapsulate that item again), or a parse error
// for malformed blobs. keys[i] is only meaningful when errs[i] is nil.
func (s *Scheme) DecapsulateBatch(sk *PrivateKey, blobs []EncapsulatedKey) (keys [][SharedKeySize]byte, errs []error) {
	keys = make([][SharedKeySize]byte, len(blobs))
	errs = make([]error, len(blobs))
	if sk.params.inner != s.params.inner {
		err := paramsMismatch("private key")
		for i := range errs {
			errs[i] = err
		}
		return keys, errs
	}
	s.runBatch(len(blobs), func(w *Workspace, i int) error {
		keys[i], errs[i] = w.Decapsulate(sk, blobs[i])
		return nil
	})
	return keys, errs
}
