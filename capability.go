package ringlwe

// Capability interfaces — the API v2 consumption surface. Production
// systems take crypto dependencies through small interfaces rather than
// concrete structs (the layered ring/rlwe API of Lattigo is the model), so
// each operation family the package offers is named by one interface:
//
//   - Encrypter / Decrypter: the raw LPR encryption scheme, with its
//     intrinsic decryption-failure rate.
//   - KEM: CPA key encapsulation with a confirmation tag, turning that
//     failure rate into a detectable, retryable error.
//   - AuthKEM: the CCA-secure Fujisaki-Okamoto surface with implicit
//     rejection.
//   - Evaluator (eval.go): additively homomorphic ciphertext evaluation
//     under the noise budget, plus multi-ciphertext aggregation.
//   - BatchEncrypter / BatchDecrypter / BatchKEM / BatchAggregator: the
//     concurrency-safe fan-out layer over the bounded worker pool.
//
// *Scheme implements every interface; *Workspace implements the
// per-goroutine subset (Encrypter, Decrypter, KEM, Evaluator). The
// assertions at the bottom of this file pin those relationships at compile
// time.

// Encrypter seals fixed-size messages to a public key. Messages are
// exactly Params.MessageSize bytes (one bit per ring coefficient).
type Encrypter interface {
	Encrypt(pk *PublicKey, msg []byte) (*Ciphertext, error)
}

// Decrypter opens ciphertexts with a private key. Like the underlying LPR
// scheme, decryption fails (returns a wrong message, not an error) with
// small probability; transport keys through a KEM instead of raw messages.
type Decrypter interface {
	Decrypt(sk *PrivateKey, ct *Ciphertext) ([]byte, error)
}

// KEM is CPA-secure key encapsulation with a confirmation tag: Encapsulate
// transports a fresh session key, Decapsulate recovers it or returns
// ErrDecapsulation (wrong key material or an intrinsic LPR decryption
// failure — the peer encapsulates again).
type KEM interface {
	Encapsulate(pk *PublicKey) (EncapsulatedKey, [SharedKeySize]byte, error)
	Decapsulate(sk *PrivateKey, blob EncapsulatedKey) ([SharedKeySize]byte, error)
}

// AuthKEM is the CCA-secure surface: key encapsulation under the
// Fujisaki-Okamoto transform with implicit rejection, safe against active
// attackers who submit chosen ciphertexts.
type AuthKEM interface {
	GenerateCCAKeys() (*CCAKeyPair, error)
	EncapsulateCCA(pk *PublicKey) ([]byte, [SharedKeySize]byte, error)
	DecapsulateCCA(kp *CCAKeyPair, blob []byte) ([SharedKeySize]byte, error)
}

// BatchEncrypter fans encryption of many messages out over a bounded
// worker pool; safe to call on a shared instance from many goroutines.
type BatchEncrypter interface {
	EncryptBatch(pk *PublicKey, msgs [][]byte) ([]*Ciphertext, error)
}

// BatchDecrypter is the concurrent many-ciphertext counterpart of
// Decrypter.
type BatchDecrypter interface {
	DecryptBatch(sk *PrivateKey, cts []*Ciphertext) ([][]byte, error)
}

// BatchKEM runs many independent encapsulations or decapsulations
// concurrently; decapsulation failures are reported per item.
type BatchKEM interface {
	EncapsulateBatch(pk *PublicKey, n int) ([]EncapsulatedKey, [][SharedKeySize]byte, error)
	DecapsulateBatch(sk *PrivateKey, blobs []EncapsulatedKey) ([][SharedKeySize]byte, []error)
}

// Compile-time capability assertions: every interface above is implemented
// by the types the documentation promises.
var (
	_ Encrypter       = (*Scheme)(nil)
	_ Decrypter       = (*Scheme)(nil)
	_ KEM             = (*Scheme)(nil)
	_ AuthKEM         = (*Scheme)(nil)
	_ Evaluator       = (*Scheme)(nil)
	_ BatchEncrypter  = (*Scheme)(nil)
	_ BatchDecrypter  = (*Scheme)(nil)
	_ BatchKEM        = (*Scheme)(nil)
	_ BatchAggregator = (*Scheme)(nil)

	_ Encrypter = (*Workspace)(nil)
	_ Decrypter = (*Workspace)(nil)
	_ KEM       = (*Workspace)(nil)
	_ Evaluator = (*Workspace)(nil)
)
