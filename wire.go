package ringlwe

import (
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
	"slices"
	"sync"

	"ringlwe/internal/core"
)

// Self-describing wire format (API v2). Every serialized object opens with
// a fixed six-byte header:
//
//	offset 0–1  magic "RL"
//	offset 2    format version (currently 2)
//	offset 3    object kind (public key, private key, ciphertext,
//	            encapsulated key, aggregate ciphertext)
//	offset 4–5  registered parameter-set ID, big-endian (1 = P1, 2 = P2,
//	            3 = A1, 4 = B1; Custom sets claim an ID via RegisterParams)
//	offset 6–   the packed-coefficient body of the legacy format
//
// so a receiver recovers the parameter set from the blob itself
// (ParseAnyPublicKey, ParseAnyCiphertext, …) instead of having to know it
// out of band. The legacy single-tag-byte format behind Bytes/Parse*
// remains supported unchanged — it is the same body behind a one-byte tag
// — and the known-answer vectors continue to pin it bit for bit.
//
// PublicKey, PrivateKey, Ciphertext and EncapsulatedKey implement
// encoding.BinaryMarshaler, encoding.BinaryAppender and
// encoding.BinaryUnmarshaler over this format; AppendBinary reuses the
// caller's buffer through the zero-copy core.AppendTo paths (at most one
// allocation, none when capacity suffices).

const (
	wireMagic0  = 'R'
	wireMagic1  = 'L'
	wireVersion = 2

	// wireHeaderSize is the fixed header length prefixed to every body.
	wireHeaderSize = 6

	wireKindPublicKey       = 1
	wireKindPrivateKey      = 2
	wireKindCiphertext      = 3
	wireKindEncapsulatedKey = 4
	wireKindAggregate       = 5
)

// Exported wire-kind constants mirror the header's kind byte so protocol
// layers can dispatch on WireKind without parsing the whole blob.
const (
	KindPublicKey       byte = wireKindPublicKey
	KindPrivateKey      byte = wireKindPrivateKey
	KindCiphertext      byte = wireKindCiphertext
	KindEncapsulatedKey byte = wireKindEncapsulatedKey
	KindAggregate       byte = wireKindAggregate
)

// WireKind peeks at a self-describing blob's kind byte. ok is false when the
// blob is too short or does not open with this package's magic and version;
// it says nothing about whether the body parses.
func WireKind(data []byte) (kind byte, ok bool) {
	if len(data) < wireHeaderSize || data[0] != wireMagic0 || data[1] != wireMagic1 || data[2] != wireVersion {
		return 0, false
	}
	return data[3], true
}

// ErrUnknownParams reports a self-describing blob whose header carries a
// parameter-set ID no call to RegisterParams (and neither built-in set)
// has claimed. Test with errors.Is.
var ErrUnknownParams = errors.New("ringlwe: unregistered parameter-set ID")

// wireIDP1, wireIDP2, wireIDA1 and wireIDB1 are the pre-registered IDs of
// the built-in sets.
const (
	wireIDP1 uint16 = 1
	wireIDP2 uint16 = 2
	wireIDA1 uint16 = 3
	wireIDB1 uint16 = 4
)

// paramsRegistry maps registered wire IDs to parameter sets. The standard
// sets register lazily on first use so importing the package does not pay
// their table precomputation.
var paramsRegistry struct {
	once sync.Once
	mu   sync.RWMutex
	byID map[uint16]*Params
}

func registryInit() {
	paramsRegistry.once.Do(func() {
		paramsRegistry.byID = map[uint16]*Params{
			wireIDP1: P1(),
			wireIDP2: P2(),
			wireIDA1: A1(),
			wireIDB1: B1(),
		}
	})
}

// RegisterParams claims wire ID id for the parameter set p, making blobs
// of that set self-describing: after registration, MarshalBinary embeds id
// and the ParseAny functions recover p from it. IDs 1–4 are the built-in
// P1, P2, A1 and B1; Custom sets must pick a nonzero ID of their own.
// Registering the same (id, params) pair again is a no-op; claiming an ID
// already bound to a different set, or registering one set under two IDs,
// is an error.
func RegisterParams(id uint16, p *Params) error {
	if id == 0 {
		return errors.New("ringlwe: wire ID 0 is reserved for unregistered sets")
	}
	registryInit()
	paramsRegistry.mu.Lock()
	defer paramsRegistry.mu.Unlock()
	if prev, ok := paramsRegistry.byID[id]; ok {
		if prev.inner == p.inner {
			return nil
		}
		return fmt.Errorf("ringlwe: wire ID %d is already registered to %s", id, prev.Name())
	}
	for otherID, other := range paramsRegistry.byID {
		if other.inner == p.inner {
			return fmt.Errorf("ringlwe: parameter set %s is already registered as wire ID %d", p.Name(), otherID)
		}
	}
	paramsRegistry.byID[id] = p
	return nil
}

// WireID returns the parameter set's registered wire ID (1 for P1, 2 for
// P2, the RegisterParams ID for registered Custom sets) or 0 when the set
// is not registered and therefore cannot be serialized self-describingly.
func (p *Params) WireID() uint16 {
	registryInit()
	paramsRegistry.mu.RLock()
	defer paramsRegistry.mu.RUnlock()
	for id, reg := range paramsRegistry.byID {
		if reg.inner == p.inner {
			return id
		}
	}
	return 0
}

// paramsByWireID resolves a header ID against the registry.
func paramsByWireID(id uint16) (*Params, error) {
	registryInit()
	paramsRegistry.mu.RLock()
	defer paramsRegistry.mu.RUnlock()
	if p, ok := paramsRegistry.byID[id]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("%w: %d", ErrUnknownParams, id)
}

// wireID returns the params' registered ID or an actionable error.
func wireID(p *Params) (uint16, error) {
	if id := p.WireID(); id != 0 {
		return id, nil
	}
	return 0, fmt.Errorf("ringlwe: parameter set %s has no wire ID; register one with RegisterParams before marshaling", p.Name())
}

// appendWireHeader appends the six-byte header to dst.
func appendWireHeader(dst []byte, kind byte, id uint16) []byte {
	dst = append(dst, wireMagic0, wireMagic1, wireVersion, kind)
	return binary.BigEndian.AppendUint16(dst, id)
}

// kindName labels a wire kind for error text.
func kindName(kind byte) string {
	switch kind {
	case wireKindPublicKey:
		return "public key"
	case wireKindPrivateKey:
		return "private key"
	case wireKindCiphertext:
		return "ciphertext"
	case wireKindEncapsulatedKey:
		return "encapsulated key"
	case wireKindAggregate:
		return "aggregate ciphertext"
	}
	return "object"
}

// parseWireHeader validates the header, resolves the embedded parameter
// set and returns it with the body. wantKind pins the object type so a
// ciphertext blob cannot be parsed as a public key.
func parseWireHeader(data []byte, wantKind byte) (*Params, []byte, error) {
	what := kindName(wantKind)
	if len(data) < wireHeaderSize {
		return nil, nil, fmt.Errorf("ringlwe: %s blob is %d bytes, shorter than the %d-byte header", what, len(data), wireHeaderSize)
	}
	p, err := parseWireHeaderBytes(data[:wireHeaderSize], wantKind)
	if err != nil {
		return nil, nil, err
	}
	return p, data[wireHeaderSize:], nil
}

// parseWireHeaderBytes validates exactly the six header bytes and resolves
// the embedded parameter set — the streaming ReadFrom seam, which reads
// the header before any body byte exists in memory.
func parseWireHeaderBytes(hdr []byte, wantKind byte) (*Params, error) {
	what := kindName(wantKind)
	if hdr[0] != wireMagic0 || hdr[1] != wireMagic1 {
		return nil, fmt.Errorf("ringlwe: %s blob lacks the \"RL\" magic (legacy format? use the Parse* functions with explicit Params)", what)
	}
	if hdr[2] != wireVersion {
		return nil, fmt.Errorf("ringlwe: %s blob has wire version %d, this library speaks %d", what, hdr[2], wireVersion)
	}
	if hdr[3] != wantKind {
		return nil, fmt.Errorf("ringlwe: blob is a %s, want a %s", kindName(hdr[3]), what)
	}
	p, err := paramsByWireID(binary.BigEndian.Uint16(hdr[4:6]))
	if err != nil {
		return nil, fmt.Errorf("ringlwe: %s: %w", what, err)
	}
	return p, nil
}

// Compile-time assertions: the four wire objects satisfy the standard
// encoding contracts.
var (
	_ encoding.BinaryMarshaler   = (*PublicKey)(nil)
	_ encoding.BinaryAppender    = (*PublicKey)(nil)
	_ encoding.BinaryUnmarshaler = (*PublicKey)(nil)
	_ encoding.BinaryMarshaler   = (*PrivateKey)(nil)
	_ encoding.BinaryAppender    = (*PrivateKey)(nil)
	_ encoding.BinaryUnmarshaler = (*PrivateKey)(nil)
	_ encoding.BinaryMarshaler   = (*Ciphertext)(nil)
	_ encoding.BinaryAppender    = (*Ciphertext)(nil)
	_ encoding.BinaryUnmarshaler = (*Ciphertext)(nil)
	_ encoding.BinaryMarshaler   = EncapsulatedKey(nil)
	_ encoding.BinaryAppender    = EncapsulatedKey(nil)
	_ encoding.BinaryUnmarshaler = (*EncapsulatedKey)(nil)
)

// AppendBinary appends the self-describing encoding of the public key to b
// (encoding.BinaryAppender): header then packed ã ‖ p̃, with at most one
// allocation.
func (pk *PublicKey) AppendBinary(b []byte) ([]byte, error) {
	id, err := wireID(pk.params)
	if err != nil {
		return nil, err
	}
	b = slices.Grow(b, wireHeaderSize+2*pk.params.inner.PolyBytes())
	return pk.inner.AppendTo(appendWireHeader(b, wireKindPublicKey, id)), nil
}

// MarshalBinary returns the self-describing encoding of the public key
// (encoding.BinaryMarshaler). The parameter set must be registered; P1 and
// P2 always are.
func (pk *PublicKey) MarshalBinary() ([]byte, error) {
	return pk.AppendBinary(nil)
}

// UnmarshalBinary decodes a self-describing public key blob, recovering
// the parameter set from the header (encoding.BinaryUnmarshaler).
func (pk *PublicKey) UnmarshalBinary(data []byte) error {
	p, body, err := parseWireHeader(data, wireKindPublicKey)
	if err != nil {
		return err
	}
	inner, err := core.ParsePublicKeyBody(p.inner, body)
	if err != nil {
		return fmt.Errorf("ringlwe: %w", err)
	}
	pk.params, pk.inner = p, inner
	return nil
}

// ParseAnyPublicKey decodes a self-describing public key blob without a
// params argument: the parameter set rides in the header.
func ParseAnyPublicKey(data []byte) (*PublicKey, error) {
	pk := new(PublicKey)
	if err := pk.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return pk, nil
}

// AppendBinary appends the self-describing encoding of the private key to
// b (encoding.BinaryAppender).
func (sk *PrivateKey) AppendBinary(b []byte) ([]byte, error) {
	id, err := wireID(sk.params)
	if err != nil {
		return nil, err
	}
	b = slices.Grow(b, wireHeaderSize+sk.params.inner.PolyBytes())
	return sk.inner.AppendTo(appendWireHeader(b, wireKindPrivateKey, id)), nil
}

// MarshalBinary returns the self-describing encoding of the private key
// (encoding.BinaryMarshaler).
func (sk *PrivateKey) MarshalBinary() ([]byte, error) {
	return sk.AppendBinary(nil)
}

// UnmarshalBinary decodes a self-describing private key blob, recovering
// the parameter set from the header (encoding.BinaryUnmarshaler).
func (sk *PrivateKey) UnmarshalBinary(data []byte) error {
	p, body, err := parseWireHeader(data, wireKindPrivateKey)
	if err != nil {
		return err
	}
	inner, err := core.ParsePrivateKeyBody(p.inner, body)
	if err != nil {
		return fmt.Errorf("ringlwe: %w", err)
	}
	sk.params, sk.inner = p, inner
	return nil
}

// ParseAnyPrivateKey decodes a self-describing private key blob without a
// params argument.
func ParseAnyPrivateKey(data []byte) (*PrivateKey, error) {
	sk := new(PrivateKey)
	if err := sk.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return sk, nil
}

// AppendBinary appends the self-describing encoding of the ciphertext to b
// (encoding.BinaryAppender).
func (ct *Ciphertext) AppendBinary(b []byte) ([]byte, error) {
	id, err := wireID(ct.params)
	if err != nil {
		return nil, err
	}
	b = slices.Grow(b, wireHeaderSize+2*ct.params.inner.PolyBytes())
	return ct.inner.AppendTo(appendWireHeader(b, wireKindCiphertext, id)), nil
}

// MarshalBinary returns the self-describing encoding of the ciphertext
// (encoding.BinaryMarshaler).
func (ct *Ciphertext) MarshalBinary() ([]byte, error) {
	return ct.AppendBinary(nil)
}

// UnmarshalBinary decodes a self-describing ciphertext blob, recovering
// the parameter set from the header (encoding.BinaryUnmarshaler).
func (ct *Ciphertext) UnmarshalBinary(data []byte) error {
	p, body, err := parseWireHeader(data, wireKindCiphertext)
	if err != nil {
		return err
	}
	inner := core.NewCiphertext(p.inner)
	if err := core.ParseCiphertextBodyInto(inner, body); err != nil {
		return fmt.Errorf("ringlwe: %w", err)
	}
	ct.params, ct.inner = p, inner
	return nil
}

// ParseAnyCiphertext decodes a self-describing ciphertext blob without a
// params argument: the parameter set rides in the header.
func ParseAnyCiphertext(data []byte) (*Ciphertext, error) {
	ct := new(Ciphertext)
	if err := ct.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return ct, nil
}

// AppendBinary appends the self-describing encoding of the encapsulation
// blob to b (encoding.BinaryAppender). An EncapsulatedKey is a bare byte
// slice with no Params pointer, so the set is recovered from the blob
// itself (its length and the embedded legacy ciphertext tag) against the
// registry; it must match exactly one registered set. P1 and P2 are
// always unambiguous; two registered Custom sets of identical
// encapsulation size cannot be told apart (both embed legacy tag 0) and
// are refused — serialize the Ciphertext and tag separately in that case.
func (ek EncapsulatedKey) AppendBinary(b []byte) ([]byte, error) {
	id, err := ek.inferWireID()
	if err != nil {
		return nil, err
	}
	b = slices.Grow(b, wireHeaderSize+len(ek))
	return append(appendWireHeader(b, wireKindEncapsulatedKey, id), ek...), nil
}

// MarshalBinary returns the self-describing encoding of the encapsulation
// blob (encoding.BinaryMarshaler). See AppendBinary for the Custom-set
// ambiguity caveat.
func (ek EncapsulatedKey) MarshalBinary() ([]byte, error) {
	return ek.AppendBinary(nil)
}

// inferWireID infers the parameter set of a raw encapsulation blob from
// the registry: the registered set whose EncapsulationSize matches the
// blob length and whose legacy ciphertext tag matches the embedded one.
func (ek EncapsulatedKey) inferWireID() (uint16, error) {
	if len(ek) == 0 {
		return 0, errors.New("ringlwe: empty encapsulation blob")
	}
	registryInit()
	paramsRegistry.mu.RLock()
	defer paramsRegistry.mu.RUnlock()
	var found uint16
	for id, p := range paramsRegistry.byID {
		if p.EncapsulationSize() == len(ek) && core.LegacyTag(p.inner) == ek[0] {
			if found != 0 {
				return 0, errors.New("ringlwe: encapsulation blob matches multiple registered parameter sets")
			}
			found = id
		}
	}
	if found == 0 {
		return 0, errors.New("ringlwe: encapsulation blob matches no registered parameter set")
	}
	return found, nil
}

// parseEncapsulatedBody validates a self-describing encapsulation blob
// and returns the parameter set with the body aliasing data (no copy; the
// callers below decide ownership).
func parseEncapsulatedBody(data []byte) (*Params, []byte, error) {
	p, body, err := parseWireHeader(data, wireKindEncapsulatedKey)
	if err != nil {
		return nil, nil, err
	}
	if len(body) != p.EncapsulationSize() {
		return nil, nil, fmt.Errorf("ringlwe: encapsulation body is %d bytes, want %d for %s", len(body), p.EncapsulationSize(), p.Name())
	}
	// The body embeds a legacy-format ciphertext; its tag must agree with
	// the header's parameter set, so Decapsulate's own parse cannot
	// disagree with the header (and MarshalBinary re-infers the same set).
	if body[0] != core.LegacyTag(p.inner) {
		return nil, nil, fmt.Errorf("ringlwe: encapsulation body carries ciphertext tag %d, want %d for %s", body[0], core.LegacyTag(p.inner), p.Name())
	}
	return p, body, nil
}

// UnmarshalBinary decodes a self-describing encapsulation blob, leaving
// the raw Decapsulate-ready bytes in ek (encoding.BinaryUnmarshaler).
func (ek *EncapsulatedKey) UnmarshalBinary(data []byte) error {
	_, body, err := parseEncapsulatedBody(data)
	if err != nil {
		return err
	}
	*ek = append((*ek)[:0], body...)
	return nil
}

// ParseAnyEncapsulatedKey decodes a self-describing encapsulation blob,
// returning the parameter set recovered from the header alongside the raw
// Decapsulate-ready bytes.
func ParseAnyEncapsulatedKey(data []byte) (*Params, EncapsulatedKey, error) {
	p, body, err := parseEncapsulatedBody(data)
	if err != nil {
		return nil, nil, err
	}
	return p, EncapsulatedKey(append([]byte(nil), body...)), nil
}

// Legacy tagged format — the original fixed-size wire encodings. These
// remain the format the known-answer vectors pin; the self-describing
// format above frames the same bodies with a richer header. New code
// should prefer MarshalBinary/AppendBinary and the ParseAny functions.

// Bytes serializes the public key in the legacy tagged format (thin
// wrapper over the core serializer; see MarshalBinary for the
// self-describing format).
func (pk *PublicKey) Bytes() []byte { return pk.inner.Bytes() }

// Bytes serializes the private key in the legacy tagged format.
func (sk *PrivateKey) Bytes() []byte { return sk.inner.Bytes() }

// Bytes serializes the ciphertext in the legacy tagged format.
func (ct *Ciphertext) Bytes() []byte { return ct.inner.Bytes() }

// ParsePublicKey deserializes a legacy-format public key under p (thin
// wrapper; see ParseAnyPublicKey for the self-describing format).
func ParsePublicKey(p *Params, data []byte) (*PublicKey, error) {
	pk, err := core.ParsePublicKey(p.inner, data)
	if err != nil {
		return nil, fmt.Errorf("ringlwe: %w", err)
	}
	return &PublicKey{params: p, inner: pk}, nil
}

// ParsePrivateKey deserializes a legacy-format private key under p.
func ParsePrivateKey(p *Params, data []byte) (*PrivateKey, error) {
	sk, err := core.ParsePrivateKey(p.inner, data)
	if err != nil {
		return nil, fmt.Errorf("ringlwe: %w", err)
	}
	return &PrivateKey{params: p, inner: sk}, nil
}

// ParseCiphertext deserializes a legacy-format ciphertext under p.
func ParseCiphertext(p *Params, data []byte) (*Ciphertext, error) {
	ct, err := core.ParseCiphertext(p.inner, data)
	if err != nil {
		return nil, fmt.Errorf("ringlwe: %w", err)
	}
	return &Ciphertext{params: p, inner: ct}, nil
}
