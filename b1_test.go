package ringlwe

import (
	"bytes"
	"errors"
	"testing"
)

// TestB1PublicParams pins the public surface of the RNS set: the accessors
// that replace Q, the wire registration, and the size arithmetic.
func TestB1PublicParams(t *testing.T) {
	p := B1()
	if !p.IsRNS() {
		t.Fatal("B1().IsRNS() = false")
	}
	if q := p.Q(); q != 0 {
		t.Fatalf("Q() = %d for RNS set, want 0", q)
	}
	mods := p.Moduli()
	if len(mods) != 3 {
		t.Fatalf("Moduli() has %d entries, want 3", len(mods))
	}
	mods[0] = 1 // must be a copy
	if p.Moduli()[0] == 1 {
		t.Fatal("Moduli() aliases internal state")
	}
	if p.QBits() != 87 {
		t.Fatalf("QBits() = %d, want 87", p.QBits())
	}
	if got := P1().QBits(); got != 13 {
		t.Fatalf("P1 QBits() = %d, want 13", got)
	}
	if P1().IsRNS() || P1().Moduli() != nil {
		t.Fatal("P1 reports RNS surface")
	}
	if id := p.WireID(); id != 4 {
		t.Fatalf("WireID() = %d, want 4", id)
	}
	if p.MaxAddends() < 1000 {
		t.Fatalf("MaxAddends() = %d, want ≥ 1000", p.MaxAddends())
	}
	if p.MessageSize() != 128 {
		t.Fatalf("MessageSize() = %d, want 128", p.MessageSize())
	}
}

// TestB1SchemeRoundTrip runs the public API end to end on B1, including
// the self-describing wire format and the KEM.
func TestB1SchemeRoundTrip(t *testing.T) {
	s := NewDeterministic(B1(), 42)
	pk, sk, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, B1().MessageSize())
	for i := range msg {
		msg[i] = byte(i ^ 0x5c)
	}
	ct, err := s.Encrypt(pk, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Decrypt(sk, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("decrypt mismatch")
	}

	// Self-describing round trips recover B1 from the header.
	blob, err := pk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	pk2, err := ParseAnyPublicKey(blob)
	if err != nil {
		t.Fatal(err)
	}
	if pk2.Params().Name() != "B1" {
		t.Fatalf("recovered set %q, want B1", pk2.Params().Name())
	}
	ctBlob, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := ParseAnyCiphertext(ctBlob)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := s.Decrypt(sk, ct2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, msg) {
		t.Fatal("wire round-tripped ciphertext decrypt mismatch")
	}

	// Kind confusion: a B1 ciphertext blob must not parse as a public key.
	if _, err := ParseAnyPublicKey(ctBlob); err == nil {
		t.Fatal("ciphertext blob parsed as public key")
	}

	// KEM round trip.
	ek, key1, err := s.Encapsulate(pk)
	if err != nil {
		t.Fatal(err)
	}
	key2, err := s.Decapsulate(sk, ek)
	if err != nil {
		t.Fatal(err)
	}
	if key1 != key2 {
		t.Fatal("KEM keys differ")
	}
	ekBlob, err := ek.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	p, ek2, err := ParseAnyEncapsulatedKey(ekBlob)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "B1" || !bytes.Equal(ek2, ek) {
		t.Fatal("encapsulation blob round trip mismatch")
	}
}

// TestWireSizeAudit checks every registered parameter set — B1's multi-row
// bodies included — serializes all five wire kinds within MaxWireSize, so
// the streaming readers' header-derived length commitment accepts every
// built-in set while still bounding hostile headers.
func TestWireSizeAudit(t *testing.T) {
	registryInit()
	paramsRegistry.mu.RLock()
	sets := make([]*Params, 0, len(paramsRegistry.byID))
	for _, p := range paramsRegistry.byID {
		sets = append(sets, p)
	}
	paramsRegistry.mu.RUnlock()
	if len(sets) < 4 {
		t.Fatalf("registry has %d sets, want ≥ 4", len(sets))
	}
	for _, p := range sets {
		maxBody := 2 * p.inner.PolyBytes() // pk and ct bodies are the largest
		for what, body := range map[string]int{
			"public key":    2 * p.inner.PolyBytes(),
			"private key":   p.inner.PolyBytes(),
			"ciphertext":    2 * p.inner.PolyBytes(),
			"encapsulation": p.EncapsulationSize(),
			"aggregate":     aggregateSubHeaderSize + 2*p.inner.PolyBytes(),
		} {
			if err := checkWireSize(what, body); err != nil {
				t.Errorf("%s: %s exceeds MaxWireSize: %v", p.Name(), what, err)
			}
		}
		if wireHeaderSize+maxBody > MaxWireSize {
			t.Errorf("%s: largest object %d bytes exceeds MaxWireSize %d", p.Name(), wireHeaderSize+maxBody, MaxWireSize)
		}
	}
}

// TestB1ResidueRowSmuggling rejects malformed residue rows at every parse
// surface: truncated bodies, trailing bytes, and per-row coefficients
// packed above their channel modulus (which would alias another residue
// mod qᵢ and silently corrupt the CRT reconstruction if accepted).
func TestB1ResidueRowSmuggling(t *testing.T) {
	s := NewDeterministic(B1(), 77)
	pk, _, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := s.Encrypt(pk, make([]byte, B1().MessageSize()))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Truncation anywhere in the residue rows.
	for _, cut := range []int{wireHeaderSize, wireHeaderSize + 1, len(blob) / 3, len(blob) - 1} {
		if _, err := ParseAnyCiphertext(blob[:cut]); err == nil {
			t.Errorf("truncated blob (%d of %d bytes) accepted", cut, len(blob))
		}
	}
	// Oversized body.
	if _, err := ParseAnyCiphertext(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Error("oversized blob accepted")
	}

	// Out-of-range residues in EACH channel row. Row i of the first
	// polynomial starts at the sum of the preceding row widths; setting a
	// full row to 0xFF drives every 29-bit field to 2²⁹−1 > qᵢ.
	p := B1()
	rowStart := wireHeaderSize
	for i, q := range p.Moduli() {
		width := 0
		for b := q; b > 0; b >>= 1 {
			width++
		}
		rb := (p.N()*width + 7) / 8
		bad := append([]byte(nil), blob...)
		for j := rowStart; j < rowStart+rb; j++ {
			bad[j] = 0xFF
		}
		if _, err := ParseAnyCiphertext(bad); err == nil {
			t.Errorf("channel %d (q=%d): out-of-range residue row accepted", i, q)
		}
		rowStart += rb
	}
}

// TestB1AggregateWire drives a >255-addend aggregation — impossible on any
// single-modulus set — through the aggregate wire format, checking the
// addend count survives and the over-cap rejection still bites.
func TestB1AggregateWire(t *testing.T) {
	s := NewDeterministic(B1(), 7)
	pk, sk, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	want := make([]byte, B1().MessageSize())
	cts := make([]*Ciphertext, n)
	msg := make([]byte, B1().MessageSize())
	for i := range cts {
		for j := range msg {
			msg[j] = byte(i + 3*j)
			want[j] ^= msg[j]
		}
		ct, err := s.Encrypt(pk, msg)
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = ct
	}
	agg := NewCiphertext(B1())
	if err := s.AggregateInto(agg, cts); err != nil {
		t.Fatal(err)
	}
	if agg.Addends() != n {
		t.Fatalf("Addends() = %d, want %d", agg.Addends(), n)
	}
	blob, err := Aggregate{agg}.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseAnyAggregate(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Addends() != n {
		t.Fatalf("transported Addends = %d, want %d", back.Addends(), n)
	}
	got, err := s.Decrypt(sk, back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("aggregate decrypt mismatch")
	}

	// A forged count above B1's budget is still rejected.
	forged := append([]byte(nil), blob...)
	for i := wireHeaderSize; i < wireHeaderSize+aggregateSubHeaderSize; i++ {
		forged[i] = 0xFF
	}
	if _, err := ParseAnyAggregate(forged); !errors.Is(err, ErrNoiseBudget) {
		t.Fatalf("forged addend count: got %v, want ErrNoiseBudget", err)
	}
}
