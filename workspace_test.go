package ringlwe

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func TestWorkspaceEncryptDecryptRoundTrip(t *testing.T) {
	for _, p := range []*Params{P1(), P2()} {
		s := NewDeterministic(p, 1)
		pk, sk, err := s.GenerateKeys()
		if err != nil {
			t.Fatal(err)
		}
		ws := s.NewWorkspace()
		msg := make([]byte, p.MessageSize())
		for i := range msg {
			msg[i] = byte(i*5 + 1)
		}
		ct := NewCiphertext(p)
		out := make([]byte, p.MessageSize())
		for trial := 0; trial < 10; trial++ {
			if err := ws.EncryptInto(ct, pk, msg); err != nil {
				t.Fatal(err)
			}
			if err := ws.DecryptInto(out, sk, ct); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, msg) {
				// The LPR scheme has a small intrinsic failure rate; a
				// couple of flipped bits in a run is within spec, more
				// means a real bug.
				diff := 0
				for i := range out {
					for b := 0; b < 8; b++ {
						if (out[i]^msg[i])>>b&1 == 1 {
							diff++
						}
					}
				}
				if diff > 2 {
					t.Fatalf("%s trial %d: %d bit errors", p.Name(), trial, diff)
				}
				t.Logf("%s trial %d: %d-bit intrinsic decryption failure", p.Name(), trial, diff)
			}
		}
	}
}

// TestWorkspaceEncryptZeroAlloc pins the tentpole: steady-state workspace
// encryption performs no heap allocation.
func TestWorkspaceEncryptZeroAlloc(t *testing.T) {
	p := P1()
	s := NewDeterministic(p, 2)
	pk, sk, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	ws := s.NewWorkspace()
	msg := make([]byte, p.MessageSize())
	ct := NewCiphertext(p)
	out := make([]byte, p.MessageSize())

	if n := testing.AllocsPerRun(100, func() {
		if err := ws.EncryptInto(ct, pk, msg); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("workspace EncryptInto: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := ws.DecryptInto(out, sk, ct); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("workspace DecryptInto: %v allocs/op, want 0", n)
	}
}

// TestWorkspaceEngineZeroAlloc pins the steady-state encrypt/decrypt path
// at zero allocations under every NTT backend except "packed" (the
// paper-layout study backend, which allocates per transform by design) —
// in particular the vector engine's lane-block kernels, and the Fast
// profile's CPU-dispatched pairing of them with the wide sampler.
func TestWorkspaceEngineZeroAlloc(t *testing.T) {
	p := P1()
	msg := make([]byte, p.MessageSize())
	out := make([]byte, p.MessageSize())
	configs := [][]Option{{Fast()}}
	for _, name := range Engines() {
		if name != "packed" {
			configs = append(configs, []Option{WithEngine(name)})
		}
	}
	for i, opts := range configs {
		s := NewDeterministic(p, uint64(80+i), opts...)
		label := s.Profile().Engine + "+" + s.Profile().Sampler
		pk, sk, err := s.GenerateKeys()
		if err != nil {
			t.Fatal(err)
		}
		ws := s.NewWorkspace()
		ct := NewCiphertext(p)
		if err := ws.EncryptInto(ct, pk, msg); err != nil {
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(100, func() {
			if err := ws.EncryptInto(ct, pk, msg); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: EncryptInto allocates %.1f/op, want 0", label, n)
		}
		if n := testing.AllocsPerRun(100, func() {
			if err := ws.DecryptInto(out, sk, ct); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: DecryptInto allocates %.1f/op, want 0", label, n)
		}
	}
}

// TestWorkspaceKEMInterop checks the workspace KEM against the legacy
// one-shot KEM in both directions.
func TestWorkspaceKEMInterop(t *testing.T) {
	p := P1()
	s := NewDeterministic(p, 3)
	pk, sk, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	ws := s.NewWorkspace()

	// Workspace encapsulates, legacy decapsulates.
	blob, key1, err := ws.Encapsulate(pk)
	if err != nil {
		t.Fatal(err)
	}
	key2, err := s.Decapsulate(sk, blob)
	if err != nil {
		if errors.Is(err, ErrDecapsulation) {
			t.Skip("intrinsic LPR decryption failure on this seed")
		}
		t.Fatal(err)
	}
	if key1 != key2 {
		t.Fatal("workspace→legacy KEM keys differ")
	}

	// Legacy encapsulates, workspace decapsulates.
	blob2, key3, err := s.Encapsulate(pk)
	if err != nil {
		t.Fatal(err)
	}
	key4, err := ws.Decapsulate(sk, blob2)
	if err != nil {
		if errors.Is(err, ErrDecapsulation) {
			t.Skip("intrinsic LPR decryption failure on this seed")
		}
		t.Fatal(err)
	}
	if key3 != key4 {
		t.Fatal("legacy→workspace KEM keys differ")
	}

	// Tampering must be detected.
	blob[len(blob)-1] ^= 1
	if _, err := ws.Decapsulate(sk, blob); !errors.Is(err, ErrDecapsulation) {
		t.Fatalf("tampered blob: err = %v, want ErrDecapsulation", err)
	}
}

func TestBatchEncryptDecrypt(t *testing.T) {
	p := P1()
	s := NewDeterministic(p, 4)
	pk, sk, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	const n = 48
	msgs := make([][]byte, n)
	for i := range msgs {
		msgs[i] = make([]byte, p.MessageSize())
		for j := range msgs[i] {
			msgs[i][j] = byte(i + j)
		}
	}
	cts, err := s.EncryptBatch(pk, msgs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.DecryptBatch(sk, cts)
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for i := range msgs {
		if !bytes.Equal(got[i], msgs[i]) {
			failed++
		}
	}
	if failed > 4 { // intrinsic LPR failure tolerance (≈0.8%/msg expected)
		t.Fatalf("%d/%d batch round trips failed", failed, n)
	}
}

func TestBatchKEM(t *testing.T) {
	p := P1()
	s := NewDeterministic(p, 5)
	pk, sk, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	blobs, keys, err := s.EncapsulateBatch(pk, n)
	if err != nil {
		t.Fatal(err)
	}
	got, errs := s.DecapsulateBatch(sk, blobs)
	ok := 0
	for i := range blobs {
		switch {
		case errs[i] == nil:
			if got[i] != keys[i] {
				t.Fatalf("blob %d: decapsulated key differs", i)
			}
			ok++
		case errors.Is(errs[i], ErrDecapsulation):
			// intrinsic failure — the documented retry case
		default:
			t.Fatalf("blob %d: unexpected error %v", i, errs[i])
		}
	}
	if ok < n/2 {
		t.Fatalf("only %d/%d decapsulations succeeded", ok, n)
	}
}

// TestConcurrentBatchAndDecapsulate is the -race hammer required by the
// refactor: ≥8 goroutines sharing one Scheme, mixing EncryptBatch,
// DecapsulateBatch, explicit workspaces and pooled workspaces, plus a
// stats reader. Run with `go test -race`.
func TestConcurrentBatchAndDecapsulate(t *testing.T) {
	p := P1()
	s := New(p) // OS randomness: the production configuration
	pk, sk, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	blobs, keys, err := s.EncapsulateBatch(pk, 16)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 10
	const rounds = 5
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 4 {
			case 0: // batch encrypt + decrypt
				msgs := make([][]byte, 8)
				for i := range msgs {
					msgs[i] = make([]byte, p.MessageSize())
					msgs[i][0] = byte(g)
				}
				for r := 0; r < rounds; r++ {
					cts, err := s.EncryptBatch(pk, msgs)
					if err != nil {
						t.Error(err)
						return
					}
					if _, err := s.DecryptBatch(sk, cts); err != nil {
						t.Error(err)
						return
					}
				}
			case 1: // batch decapsulate of the shared blobs
				for r := 0; r < rounds; r++ {
					got, errs := s.DecapsulateBatch(sk, blobs)
					for i := range blobs {
						if errs[i] == nil && got[i] != keys[i] {
							t.Errorf("decapsulated key %d differs", i)
							return
						}
					}
				}
			case 2: // explicit workspace: encrypt/decrypt/decapsulate loop
				ws := s.NewWorkspace()
				ct := NewCiphertext(p)
				msg := make([]byte, p.MessageSize())
				out := make([]byte, p.MessageSize())
				for r := 0; r < rounds*4; r++ {
					if err := ws.EncryptInto(ct, pk, msg); err != nil {
						t.Error(err)
						return
					}
					if err := ws.DecryptInto(out, sk, ct); err != nil {
						t.Error(err)
						return
					}
					if _, err := ws.Decapsulate(sk, blobs[r%len(blobs)]); err != nil &&
						!errors.Is(err, ErrDecapsulation) {
						t.Error(err)
						return
					}
				}
			case 3: // pooled workspace KEM + concurrent stats reads
				for r := 0; r < rounds*2; r++ {
					ws := s.AcquireWorkspace()
					blob, key, err := ws.Encapsulate(pk)
					if err != nil {
						t.Error(err)
						s.ReleaseWorkspace(ws)
						return
					}
					got, err := ws.Decapsulate(sk, blob)
					s.ReleaseWorkspace(ws)
					if err == nil && got != key {
						t.Error("pooled workspace KEM key mismatch")
						return
					}
					_, _, _, _ = s.SamplerStats()
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestLegacyOpsConcurrentWithForking pins the locked-base-source fix: the
// one-shot API draws from the base source while other goroutines fork
// workspaces off it (deterministic sources consume parent state when
// forking), which must not race. Run with `go test -race`.
func TestLegacyOpsConcurrentWithForking(t *testing.T) {
	p := P1()
	s := NewDeterministic(p, 8) // deterministic: Fork consumes parent state
	pk, _, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, p.MessageSize())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			ws := s.NewWorkspace()
			ct := NewCiphertext(p)
			if err := ws.EncryptInto(ct, pk, msg); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		if _, err := s.Encrypt(pk, msg); err != nil { // one-shot path, base source
			t.Fatal(err)
		}
	}
	wg.Wait()
}

func TestWorkspaceParameterMismatch(t *testing.T) {
	s1 := NewDeterministic(P1(), 6)
	s2 := NewDeterministic(P2(), 7)
	pk2, sk2, _ := s2.GenerateKeys()
	ws := s1.NewWorkspace()
	if _, err := ws.Encrypt(pk2, make([]byte, P2().MessageSize())); err == nil {
		t.Error("foreign public key accepted")
	}
	if _, _, err := ws.Encapsulate(pk2); err == nil {
		t.Error("foreign public key accepted by Encapsulate")
	}
	if _, err := ws.Decapsulate(sk2, make(EncapsulatedKey, P2().EncapsulationSize())); err == nil {
		t.Error("foreign private key accepted by Decapsulate")
	}
	if _, err := s1.EncryptBatch(pk2, nil); err == nil {
		t.Error("foreign public key accepted by EncryptBatch")
	}
}
