package ringlwe

import (
	"bytes"
	"errors"
	"testing"
)

// The capability interfaces are usable as dependency seams: a consumer
// written against Encrypter/Decrypter/KEM works with a Scheme and a
// Workspace interchangeably.
func TestCapabilityInterfaces(t *testing.T) {
	p := P1()
	s := NewDeterministic(p, 100)
	pub, priv, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, p.MessageSize())
	copy(msg, "through the interface")

	roundTrip := func(e Encrypter, d Decrypter) {
		t.Helper()
		ct, err := e.Encrypt(pub, msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Decrypt(priv, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Log("decryption failure (within LPR failure rate)")
		}
	}
	roundTrip(s, s)
	ws := s.NewWorkspace()
	roundTrip(ws, ws)

	kemTrip := func(k KEM) {
		t.Helper()
		for {
			blob, sent, err := k.Encapsulate(pub)
			if err != nil {
				t.Fatal(err)
			}
			recv, err := k.Decapsulate(priv, blob)
			if errors.Is(err, ErrDecapsulation) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if sent != recv {
				t.Fatal("KEM keys disagree")
			}
			return
		}
	}
	kemTrip(s)
	kemTrip(s.NewWorkspace())

	var ak AuthKEM = s
	kp, err := ak.GenerateCCAKeys()
	if err != nil {
		t.Fatal(err)
	}
	blob, sent, err := ak.EncapsulateCCA(kp.Public)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := ak.DecapsulateCCA(kp, blob)
	if err != nil {
		t.Fatal(err)
	}
	if sent != recv {
		t.Fatal("AuthKEM keys disagree")
	}
}

// Every cross-parameter-set check site wraps the one ErrParamsMismatch
// sentinel, so callers test with errors.Is instead of string comparison.
func TestParamsMismatchUniform(t *testing.T) {
	s1 := NewDeterministic(P1(), 200)
	s2 := NewDeterministic(P2(), 201)
	pub1, priv1, err := s1.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	pub2, priv2, err := s2.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	msg1 := make([]byte, P1().MessageSize())
	ct1, err := s1.Encrypt(pub1, msg1)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := s2.Encrypt(pub2, make([]byte, P2().MessageSize()))
	if err != nil {
		t.Fatal(err)
	}
	kp2, err := s2.GenerateCCAKeys()
	if err != nil {
		t.Fatal(err)
	}
	ws := s1.NewWorkspace()
	out := make([]byte, P1().MessageSize())

	cases := []struct {
		name string
		call func() error
	}{
		{"Scheme.Encrypt", func() error { _, err := s1.Encrypt(pub2, msg1); return err }},
		{"Scheme.Decrypt/key", func() error { _, err := s1.Decrypt(priv2, ct2); return err }},
		{"Scheme.Decrypt/ct", func() error { _, err := s1.Decrypt(priv1, ct2); return err }},
		{"PrivateKey.Decrypt", func() error { _, err := priv1.Decrypt(ct2); return err }},
		{"Workspace.EncryptInto", func() error { return ws.EncryptInto(NewCiphertext(P1()), pub2, msg1) }},
		{"Workspace.EncryptInto/buffer", func() error { return ws.EncryptInto(NewCiphertext(P2()), pub1, msg1) }},
		{"Workspace.Encrypt", func() error { _, err := ws.Encrypt(pub2, msg1); return err }},
		{"Workspace.Decrypt", func() error { _, err := ws.Decrypt(priv2, ct1); return err }},
		{"Workspace.DecryptInto", func() error { return ws.DecryptInto(out, priv1, ct2) }},
		{"Workspace.Encapsulate", func() error { _, _, err := ws.Encapsulate(pub2); return err }},
		{"Workspace.Decapsulate", func() error { _, err := ws.Decapsulate(priv2, nil); return err }},
		{"Scheme.EncapsulateCCA", func() error { _, _, err := s1.EncapsulateCCA(pub2); return err }},
		{"Scheme.DecapsulateCCA", func() error { _, err := s1.DecapsulateCCA(kp2, nil); return err }},
		{"Scheme.EncryptBatch", func() error { _, err := s1.EncryptBatch(pub2, [][]byte{msg1}); return err }},
		{"Scheme.DecryptBatch/key", func() error { _, err := s1.DecryptBatch(priv2, []*Ciphertext{ct1}); return err }},
		{"Scheme.DecryptBatch/ct", func() error { _, err := s1.DecryptBatch(priv1, []*Ciphertext{ct2}); return err }},
		{"Scheme.EncapsulateBatch", func() error { _, _, err := s1.EncapsulateBatch(pub2, 1); return err }},
		{"Scheme.DecapsulateBatch", func() error {
			_, errs := s1.DecapsulateBatch(priv2, []EncapsulatedKey{nil})
			return errs[0]
		}},
	}
	for _, c := range cases {
		err := c.call()
		if err == nil {
			t.Errorf("%s: cross-params call succeeded, want error", c.name)
			continue
		}
		if !errors.Is(err, ErrParamsMismatch) {
			t.Errorf("%s: error %q does not wrap ErrParamsMismatch", c.name, err)
		}
	}
}
