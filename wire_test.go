package ringlwe

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// Self-describing round trips: both standard sets, all object kinds, no
// params argument on the read side.
func TestWireRoundTrip(t *testing.T) {
	for seed, p := range map[uint64]*Params{301: P1(), 302: P2()} {
		s := NewDeterministic(p, seed)
		pub, priv, err := s.GenerateKeys()
		if err != nil {
			t.Fatal(err)
		}
		msg := make([]byte, p.MessageSize())
		ct, err := s.Encrypt(pub, msg)
		if err != nil {
			t.Fatal(err)
		}

		pkBlob, err := pub.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		gotPK, err := ParseAnyPublicKey(pkBlob)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if gotPK.Params().Name() != p.Name() {
			t.Fatalf("recovered params %s, want %s", gotPK.Params().Name(), p.Name())
		}
		if !bytes.Equal(gotPK.Bytes(), pub.Bytes()) {
			t.Fatalf("%s: public key round trip mismatch", p.Name())
		}

		skBlob, err := priv.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		gotSK, err := ParseAnyPrivateKey(skBlob)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotSK.Bytes(), priv.Bytes()) {
			t.Fatalf("%s: private key round trip mismatch", p.Name())
		}

		ctBlob, err := ct.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		gotCT, err := ParseAnyCiphertext(ctBlob)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotCT.Bytes(), ct.Bytes()) {
			t.Fatalf("%s: ciphertext round trip mismatch", p.Name())
		}
		// The parsed ciphertext still decrypts under the parsed key.
		if _, err := gotSK.Decrypt(gotCT); err != nil {
			t.Fatal(err)
		}
	}
}

// AppendBinary preserves the caller's prefix, appends exactly the
// MarshalBinary encoding, and does not allocate when capacity suffices.
func TestWireAppendBinary(t *testing.T) {
	p := P1()
	s := NewDeterministic(p, 303)
	pub, _, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	want, err := pub.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("framed:")
	got, err := pub.AppendBinary(append([]byte(nil), prefix...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, prefix) || !bytes.Equal(got[len(prefix):], want) {
		t.Fatal("AppendBinary does not append the MarshalBinary encoding after the prefix")
	}

	buf := make([]byte, 0, len(want))
	if n := testing.AllocsPerRun(100, func() {
		buf = buf[:0]
		var err error
		buf, err = pub.AppendBinary(buf)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("AppendBinary into a sized buffer allocates %v objects/op, want 0", n)
	}
}

// EncapsulatedKey: the wire wrapper recovers the parameter set and leaves
// Decapsulate-ready bytes.
func TestWireEncapsulatedKey(t *testing.T) {
	for seed, p := range map[uint64]*Params{304: P1(), 305: P2()} {
		s := NewDeterministic(p, seed)
		pub, priv, err := s.GenerateKeys()
		if err != nil {
			t.Fatal(err)
		}
		blob, key, err := s.Encapsulate(pub)
		if err != nil {
			t.Fatal(err)
		}
		wire, err := blob.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		gotParams, gotBlob, err := ParseAnyEncapsulatedKey(wire)
		if err != nil {
			t.Fatal(err)
		}
		if gotParams.Name() != p.Name() {
			t.Fatalf("recovered params %s, want %s", gotParams.Name(), p.Name())
		}
		if !bytes.Equal(gotBlob, blob) {
			t.Fatal("encapsulation bytes changed in transit")
		}
		var ek EncapsulatedKey
		if err := ek.UnmarshalBinary(wire); err != nil {
			t.Fatal(err)
		}
		got, err := s.Decapsulate(priv, ek)
		if err != nil {
			// ErrDecapsulation here would be an intrinsic failure; the
			// deterministic seed is chosen to avoid it.
			t.Fatal(err)
		}
		if got != key {
			t.Fatal("KEM keys disagree after wire round trip")
		}
	}
}

// Malformed self-describing blobs fail loudly and precisely.
func TestWireErrors(t *testing.T) {
	p := P1()
	s := NewDeterministic(p, 306)
	pub, _, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := pub.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		errWant string
	}{
		{"truncated header", func(b []byte) []byte { return b[:4] }, "header"},
		{"empty", func(b []byte) []byte { return nil }, "header"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "magic"},
		{"bad version", func(b []byte) []byte { b[2] = 9; return b }, "version"},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-1] }, "body"},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0) }, "body"},
	}
	for _, c := range cases {
		mutated := c.mutate(append([]byte(nil), blob...))
		if _, err := ParseAnyPublicKey(mutated); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.errWant) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.errWant)
		}
	}

	// Unknown params ID wraps the sentinel.
	bad := append([]byte(nil), blob...)
	bad[4], bad[5] = 0xBE, 0xEF
	if _, err := ParseAnyPublicKey(bad); !errors.Is(err, ErrUnknownParams) {
		t.Errorf("unknown ID: error %v does not wrap ErrUnknownParams", err)
	}

	// Kind confusion: a public key blob is not a ciphertext.
	if _, err := ParseAnyCiphertext(blob); err == nil {
		t.Error("public key blob accepted as ciphertext")
	}

	// Legacy blobs are detected as such, not misparsed.
	if _, err := ParseAnyPublicKey(pub.Bytes()); err == nil || !strings.Contains(err.Error(), "legacy") {
		t.Errorf("legacy blob: error %v does not point at the legacy format", err)
	}
}

// Custom parameter sets join the self-describing format through the
// RegisterParams ID hook.
func TestWireCustomParams(t *testing.T) {
	custom, err := Custom("toy", 64, 7681, 1131, 100)
	if err != nil {
		t.Fatal(err)
	}
	s := NewDeterministic(custom, 307)
	pub, _, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}

	// Unregistered: marshaling is refused with an actionable error.
	if _, err := pub.MarshalBinary(); err == nil || !strings.Contains(err.Error(), "RegisterParams") {
		t.Fatalf("unregistered custom set marshaled (err=%v), want RegisterParams hint", err)
	}

	if err := RegisterParams(0x7001, custom); err != nil {
		t.Fatal(err)
	}
	if got := custom.WireID(); got != 0x7001 {
		t.Fatalf("WireID = %d, want %d", got, 0x7001)
	}
	// Idempotent re-registration; conflicting claims rejected.
	if err := RegisterParams(0x7001, custom); err != nil {
		t.Fatalf("re-registering the same pair: %v", err)
	}
	if err := RegisterParams(0x7001, P1()); err == nil {
		t.Fatal("claiming a taken ID for different params succeeded")
	}
	if err := RegisterParams(0x7002, custom); err == nil {
		t.Fatal("registering one set under two IDs succeeded")
	}
	if err := RegisterParams(0, custom); err == nil {
		t.Fatal("wire ID 0 accepted")
	}

	blob, err := pub.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseAnyPublicKey(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Params().Name() != "toy" || !bytes.Equal(got.Bytes(), pub.Bytes()) {
		t.Fatal("custom set round trip mismatch")
	}
}
