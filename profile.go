package ringlwe

import (
	"io"

	"ringlwe/internal/core"
	"ringlwe/internal/cpu"
	"ringlwe/internal/ntt"
	"ringlwe/internal/sampler"
)

// Profile is the resolved security/performance configuration of a Scheme:
// which NTT backend transforms run through, which Gaussian sampler
// backend error polynomials come from, and whether the message codec is
// the branchless constant-time one. Profiles compose: start from a preset
// (Fast, Reference, ConstantTime) and override single fields with the
// orthogonal options (WithEngine, WithSampler, WithConstantTimeDecode),
// or hand-assemble one and apply it with WithProfile. Scheme.Profile
// reports the configuration a scheme resolved to.
type Profile struct {
	// Engine is the NTT backend registry name (see Engines). Every engine
	// computes bit-identical transforms; this is purely a speed knob.
	Engine string
	// Sampler is the Gaussian sampler backend registry name (see
	// Samplers). Backends spend randomness differently, so only
	// "knuth-yao" reproduces the historical deterministic streams the
	// known-answer tests pin; ciphertexts from any backend interoperate.
	Sampler string
	// ConstantTimeDecode selects the branchless message codec: no
	// plaintext bit steers a branch or memory index on the encrypt or
	// decrypt path. Bit-identical results, slightly more arithmetic.
	ConstantTimeDecode bool
}

// Preset profile values. The presets are exposed as Options (Fast,
// Reference, ConstantTime); these are the configurations they resolve to.
var (
	profileDefault   = Profile{Engine: ntt.DefaultEngine, Sampler: sampler.Default}
	profileFast      = fastProfile()
	profileReference = Profile{Engine: "barrett", Sampler: "knuth-yao"}
	profileConstTime = Profile{Engine: "shoup", Sampler: "cdt", ConstantTimeDecode: true}
)

// fastProfile resolves the throughput preset through the CPU dispatch
// layer once at startup: machines with a vector unit get the 8-lane
// "vector" NTT kernels and the 16-coefficient "wide-ky" sampler batch;
// anything narrower keeps the previous fast pair (Shoup kernels, 8-wide
// batched sampler), so Fast is never slower than it used to be. The
// RLWE_FORCE_ENGINE / RLWE_FORCE_SAMPLER environment knobs override the
// detection (read at process start, like all dispatch decisions).
func fastProfile() Profile {
	p := Profile{Engine: "shoup", Sampler: "batched-ky"}
	if e := cpu.BestNTTEngine(); e != ntt.DefaultEngine {
		p.Engine = e
	}
	if s := cpu.BestSamplerEngine(); s != sampler.Default {
		p.Sampler = s
	}
	return p
}

// Name returns the preset label this profile corresponds to — "fast",
// "reference", "constant-time", or "default" for the configuration New
// resolves to when no options are given — and "custom" for any other
// combination.
func (p Profile) Name() string {
	switch p {
	case profileFast:
		return "fast"
	case profileReference:
		return "reference"
	case profileConstTime:
		return "constant-time"
	case profileDefault:
		return "default"
	}
	return "custom"
}

// config is the construction state the options fold into: a Profile plus
// the orthogonal randomness override.
type config struct {
	profile Profile
	random  io.Reader
}

func (c config) coreOptions() core.Options {
	return core.Options{
		Engine:             c.profile.Engine,
		Sampler:            c.profile.Sampler,
		ConstantTimeDecode: c.profile.ConstantTimeDecode,
	}
}

// Option configures optional Scheme behaviour at construction.
type Option func(*config)

func applyOptions(opts []Option) config {
	c := config{profile: profileDefault}
	for _, o := range opts {
		o(&c)
	}
	// A hand-assembled Profile may leave fields zero; resolve them to the
	// defaults so Scheme.Profile always reports a complete configuration.
	if c.profile.Engine == "" {
		c.profile.Engine = ntt.DefaultEngine
	}
	if c.profile.Sampler == "" {
		c.profile.Sampler = sampler.Default
	}
	return c
}

// Fast selects the throughput preset, resolved through CPU dispatch at
// process start: on machines with a vector unit (any amd64 or arm64)
// that is the 8-lane "vector" NTT kernels plus the 16-coefficient
// "wide-ky" SWAR Knuth-Yao sampler; narrower targets keep the Shoup
// kernels and the 8-wide batched sampler. Deterministic streams differ
// from the reference profile — the samplers spend randomness in word
// gulps — and, unlike the fixed presets, the resolved backends (and thus
// the streams) vary by machine; ciphertexts interoperate freely with
// keys from any profile. Set RLWE_FORCE_ENGINE / RLWE_FORCE_SAMPLER to
// pin the choice.
func Fast() Option { return WithProfile(profileFast) }

// Reference selects the paper-faithful preset: the generic Barrett NTT
// path plus the serial LUT Knuth-Yao sampler, the pipeline whose
// deterministic streams the known-answer vectors pin bit for bit. Use it
// when reproducing the paper's exact outputs or cross-checking another
// implementation.
func Reference() Option { return WithProfile(profileReference) }

// ConstantTime selects the data-oblivious preset: Shoup NTT kernels, the
// fixed-shape CDT Gaussian sampler (same table probes and arithmetic for
// every sample), and the branchless message codec — no secret bit steers
// a branch or a memory index on the encrypt or decrypt path. Results are
// bit-compatible with every other profile (same distribution, same
// decryption), still at zero steady-state allocations.
func ConstantTime() Option { return WithProfile(profileConstTime) }

// WithProfile applies a complete Profile, replacing any previously applied
// preset or per-field option. Zero-valued fields resolve to the defaults.
func WithProfile(p Profile) Option {
	return func(c *config) { c.profile = p }
}

// WithEngine selects the NTT backend the scheme's transforms run through,
// by registry name (see Engines). Every backend computes bit-identical
// results — the known-answer vectors hold under all of them — so this is
// purely a speed/footprint knob: "shoup" (the default) is the
// Shoup-multiplied lazy-reduction kernel, "barrett" the generic reference
// path, and "packed" the paper's two-coefficients-per-word layout (which
// allocates per transform; it exists for study, not throughput).
// Construction panics if the name is not registered.
func WithEngine(name string) Option {
	return func(c *config) { c.profile.Engine = name }
}

// Engines lists the registered NTT backend names accepted by WithEngine.
func Engines() []string { return ntt.EngineNames() }

// WithSampler selects the discrete-Gaussian sampler backend the scheme's
// workspaces draw error polynomials from, by registry name (see Samplers).
// All backends target the identical distribution, but they spend
// randomness differently, so only the default "knuth-yao" — the paper's
// serial LUT sampler, the one the known-answer vectors pin — reproduces
// historical deterministic streams; "batched-ky" trades that for ≈6×
// sampling throughput via 64-bit batched LUT probes, and "cdt" trades it
// for a fixed-shape constant-time inversion. Ciphertexts sampled under any
// backend interoperate freely (decryption consumes no randomness).
// Construction panics if the name is not registered.
func WithSampler(name string) Option {
	return func(c *config) { c.profile.Sampler = name }
}

// Samplers lists the registered Gaussian sampler backend names accepted by
// WithSampler.
func Samplers() []string { return sampler.Names() }

// WithConstantTimeDecode routes message encoding and decoding through the
// branchless constant-time codecs without changing the NTT or sampler
// backends. Results are bit-identical to the branching codecs on every
// input; only the instruction trace stops depending on plaintext bits.
// For the fully data-oblivious configuration use the ConstantTime preset,
// which also fixes the sampler's shape.
func WithConstantTimeDecode() Option {
	return func(c *config) { c.profile.ConstantTimeDecode = true }
}

// WithRandom makes New draw all randomness from r instead of the operating
// system CSPRNG — the hook for hardware entropy sources, seeded DRBGs and
// test vectors (re-scoping the entropy-budget concern: a buffered DRBG
// behind an io.Reader decouples sampler backend choice from syscall
// cost). The reader must yield uniformly distributed bytes and never fail;
// a read error is treated as a dead entropy source and panics.
// NewDeterministic ignores this option: its seed defines the stream.
func WithRandom(r io.Reader) Option {
	return func(c *config) { c.random = r }
}
