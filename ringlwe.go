// Package ringlwe is a pure-Go implementation of the ring-LWE public-key
// encryption scheme of De Clercq, Roy, Vercauteren and Verbauwhede,
// "Efficient Software Implementation of Ring-LWE Encryption" (DATE 2015):
// the LPR cryptosystem over Z_q[x]/(x^n+1) in the NTT-domain formulation,
// with Knuth-Yao discrete Gaussian sampling accelerated by the paper's
// lookup tables and a negative-wrapped NTT with packed coefficients.
//
// Two parameter sets are provided: P1 (n=256, q=7681, medium-term
// security) and P2 (n=512, q=12289, long-term security). A plaintext is
// n/8 bytes (one bit per ring coefficient).
//
// Like the underlying LPR scheme, decryption fails with small probability
// (≈ 0.8% per 32-byte message at P1); the KEM interface (Encapsulate /
// Decapsulate) carries a confirmation tag so failures are detected and can
// be retried, which is the recommended way to transport keys.
//
//	scheme := ringlwe.New(ringlwe.P1())
//	pub, priv, err := scheme.GenerateKeys()
//	ct, err := scheme.Encrypt(pub, msg)
//	msg, err := scheme.Decrypt(priv, ct)
//
// The API is organized in three layers (API v2):
//
//   - Capability interfaces (Encrypter, Decrypter, KEM, AuthKEM and the
//     batch variants) name each operation family; *Scheme implements all
//     of them and *Workspace the per-goroutine subset, so consumers can
//     depend on the narrowest surface they need.
//   - Security profiles compose a Scheme's backends: Fast (throughput),
//     Reference (the KAT-pinned paper pipeline) and ConstantTime (fully
//     data-oblivious encrypt/decrypt), refined by the orthogonal options
//     WithEngine, WithSampler, WithConstantTimeDecode and WithRandom;
//     Scheme.Profile reports the resolved configuration.
//   - A self-describing wire format: keys, ciphertexts and encapsulation
//     blobs implement encoding.BinaryMarshaler/BinaryAppender/
//     BinaryUnmarshaler with a versioned header carrying a registered
//     parameter-set ID, so ParseAnyPublicKey/ParseAnyCiphertext recover
//     the parameter set from the blob itself. The legacy fixed-size
//     Bytes/Parse* format remains supported.
//
// This package is the reproduction of a research artifact: it is suitable
// for experimentation and benchmarking, not for protecting production
// traffic (the parameters predate the NIST PQC standardization).
package ringlwe

import (
	"ringlwe/internal/core"
)

// Params identifies a parameter set. Obtain instances from P1, P2 or
// Custom; Params are immutable and safe to share.
type Params struct {
	inner *core.Params
}

// P1 returns the paper's medium-term security set (n=256, q=7681,
// σ=11.31/√2π).
func P1() *Params { return &Params{inner: core.P1()} }

// P2 returns the paper's long-term security set (n=512, q=12289,
// σ=12.18/√2π).
func P2() *Params { return &Params{inner: core.P2()} }

// A1 returns the aggregation-tuned set (n=256, q=12289, σ=8/√2π): P1's ring
// dimension under P2's modulus with a narrower error distribution, trading
// security margin for homomorphic-addition depth — MaxAddends is ~26 where
// the paper sets afford 2. Use it for encrypted-aggregation workloads (see
// Evaluator); prefer P1/P2 for plain encryption.
func A1() *Params { return &Params{inner: core.A1()} }

// B1 returns the large-parameter RNS set (n=1024, k=3 residue channels,
// ~87-bit composite modulus, σ = P1's 11.31/√2π): coefficients live in
// residue number system form, one 29-bit prime channel per row, with CRT
// reconstruction only at decode time. The enormous decoding margin pushes
// MaxAddends into the thousands (it pins at the 65535 wire cap), so B1 is
// the set for deep encrypted aggregation; see the Evaluator. Q reports 0
// for RNS sets — use Moduli and QBits instead.
func B1() *Params { return &Params{inner: core.B1()} }

// CustomRNS builds a non-standard multi-modulus (RNS) parameter set: n a
// power-of-two multiple of 8, and moduli 2–4 distinct word-sized primes,
// each ≡ 1 (mod 2n), whose product is the composite coefficient modulus
// (≤ 120 bits). sNum/sDen set the Gaussian parameter s = σ√(2π) as a
// rational. Intended for experiments; prefer B1. To serialize objects of
// the set self-describingly, claim an ID with RegisterParams.
func CustomRNS(name string, n int, moduli []uint32, sNum, sDen int64) (*Params, error) {
	p, err := core.NewRNSParams(name, n, moduli, sNum, sDen, 90)
	if err != nil {
		return nil, err
	}
	return &Params{inner: p}, nil
}

// Custom builds a non-standard parameter set: n must be a power of two
// multiple of 8, q a prime with q ≡ 1 (mod 2n), and sNum/sDen the Gaussian
// parameter s = σ√(2π) as a rational. Intended for experiments; the two
// standard sets should be preferred. To serialize Custom-set objects in
// the self-describing wire format, claim an ID with RegisterParams.
func Custom(name string, n int, q uint32, sNum, sDen int64) (*Params, error) {
	p, err := core.NewParams(name, n, q, sNum, sDen, 90)
	if err != nil {
		return nil, err
	}
	return &Params{inner: p}, nil
}

// Name returns the parameter set label.
func (p *Params) Name() string { return p.inner.Name }

// N returns the ring dimension.
func (p *Params) N() int { return p.inner.N }

// Q returns the coefficient modulus, or 0 for RNS sets, whose composite
// modulus exceeds a machine word — use Moduli and QBits for those.
func (p *Params) Q() uint32 { return p.inner.Q }

// IsRNS reports whether the set stores coefficients in residue number
// system form (multiple prime channels, composite modulus), as B1 does.
func (p *Params) IsRNS() bool { return p.inner.IsRNS() }

// Moduli returns the residue primes of an RNS set (a copy), ordered as the
// serialized residue rows are; nil for single-modulus sets.
func (p *Params) Moduli() []uint32 {
	if !p.inner.IsRNS() {
		return nil
	}
	out := make([]uint32, len(p.inner.Basis.Moduli))
	copy(out, p.inner.Basis.Moduli)
	return out
}

// QBits returns the bit length of the coefficient modulus — the composite
// product for RNS sets (87 for B1), the single prime's length otherwise.
func (p *Params) QBits() int {
	if p.inner.IsRNS() {
		return p.inner.Basis.QBits
	}
	return int(p.inner.Mod.BitLen())
}

// Sigma returns the Gaussian standard deviation.
func (p *Params) Sigma() float64 { return p.inner.Sigma }

// MessageSize returns the plaintext length in bytes.
func (p *Params) MessageSize() int { return p.inner.MessageBytes() }

// CiphertextSize returns the serialized ciphertext length in bytes
// (legacy tagged format; the self-describing format adds wireHeaderSize−1
// bytes of header).
func (p *Params) CiphertextSize() int { return 1 + 2*p.inner.PolyBytes() }

// PublicKeySize returns the serialized public key length in bytes (legacy
// tagged format).
func (p *Params) PublicKeySize() int { return 1 + 2*p.inner.PolyBytes() }

// PrivateKeySize returns the serialized private key length in bytes
// (legacy tagged format).
func (p *Params) PrivateKeySize() int { return 1 + p.inner.PolyBytes() }

// FailureRate returns the analytic decryption-failure estimate
// (per-coefficient, per-message).
func (p *Params) FailureRate() (perBit, perMessage float64) {
	return p.inner.EstimateFailureRate()
}

// MaxAddends returns the additive noise budget: the largest number of
// fresh-ciphertext noise units that may be homomorphically summed while the
// aggregate still decrypts within the modeled 1e-2 per-bit failure target.
// The evaluation layer returns ErrNoiseBudget rather than exceed it. P1 and
// P2 pin at 2; the aggregation-tuned A1 at 26.
func (p *Params) MaxAddends() int { return p.inner.MaxAddends() }

// AggFailureRate returns the analytic decryption-failure estimate for an
// aggregate carrying the given number of noise units (per-bit, per-message);
// units = 1 is FailureRate.
func (p *Params) AggFailureRate(units uint64) (perBit, perMessage float64) {
	return p.inner.EstimateAggFailureRate(units)
}
