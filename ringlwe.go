// Package ringlwe is a pure-Go implementation of the ring-LWE public-key
// encryption scheme of De Clercq, Roy, Vercauteren and Verbauwhede,
// "Efficient Software Implementation of Ring-LWE Encryption" (DATE 2015):
// the LPR cryptosystem over Z_q[x]/(x^n+1) in the NTT-domain formulation,
// with Knuth-Yao discrete Gaussian sampling accelerated by the paper's
// lookup tables and a negative-wrapped NTT with packed coefficients.
//
// Two parameter sets are provided: P1 (n=256, q=7681, medium-term
// security) and P2 (n=512, q=12289, long-term security). A plaintext is
// n/8 bytes (one bit per ring coefficient).
//
// Like the underlying LPR scheme, decryption fails with small probability
// (≈ 0.8% per 32-byte message at P1); the KEM interface (Encapsulate /
// Decapsulate) carries a confirmation tag so failures are detected and can
// be retried, which is the recommended way to transport keys.
//
//	scheme := ringlwe.New(ringlwe.P1())
//	pub, priv, err := scheme.GenerateKeys()
//	ct, err := scheme.Encrypt(pub, msg)
//	msg, err := scheme.Decrypt(priv, ct)
//
// This package is the reproduction of a research artifact: it is suitable
// for experimentation and benchmarking, not for protecting production
// traffic (the parameters predate the NIST PQC standardization, and
// decryption is not constant time).
package ringlwe

import (
	"errors"
	"fmt"
	"sync"

	"ringlwe/internal/core"
	"ringlwe/internal/ntt"
	"ringlwe/internal/rng"
	"ringlwe/internal/sampler"
)

// Params identifies a parameter set. Obtain instances from P1, P2 or
// Custom; Params are immutable and safe to share.
type Params struct {
	inner *core.Params
}

// P1 returns the paper's medium-term security set (n=256, q=7681,
// σ=11.31/√2π).
func P1() *Params { return &Params{inner: core.P1()} }

// P2 returns the paper's long-term security set (n=512, q=12289,
// σ=12.18/√2π).
func P2() *Params { return &Params{inner: core.P2()} }

// Custom builds a non-standard parameter set: n must be a power of two
// multiple of 8, q a prime with q ≡ 1 (mod 2n), and sNum/sDen the Gaussian
// parameter s = σ√(2π) as a rational. Intended for experiments; the two
// standard sets should be preferred.
func Custom(name string, n int, q uint32, sNum, sDen int64) (*Params, error) {
	p, err := core.NewParams(name, n, q, sNum, sDen, 90)
	if err != nil {
		return nil, err
	}
	return &Params{inner: p}, nil
}

// Name returns the parameter set label.
func (p *Params) Name() string { return p.inner.Name }

// N returns the ring dimension.
func (p *Params) N() int { return p.inner.N }

// Q returns the coefficient modulus.
func (p *Params) Q() uint32 { return p.inner.Q }

// Sigma returns the Gaussian standard deviation.
func (p *Params) Sigma() float64 { return p.inner.Sigma }

// MessageSize returns the plaintext length in bytes.
func (p *Params) MessageSize() int { return p.inner.MessageBytes() }

// CiphertextSize returns the serialized ciphertext length in bytes.
func (p *Params) CiphertextSize() int { return 1 + 2*p.inner.PolyBytes() }

// PublicKeySize returns the serialized public key length in bytes.
func (p *Params) PublicKeySize() int { return 1 + 2*p.inner.PolyBytes() }

// PrivateKeySize returns the serialized private key length in bytes.
func (p *Params) PrivateKeySize() int { return 1 + p.inner.PolyBytes() }

// FailureRate returns the analytic decryption-failure estimate
// (per-coefficient, per-message).
func (p *Params) FailureRate() (perBit, perMessage float64) {
	return p.inner.EstimateFailureRate()
}

// PublicKey is a ring-LWE public key (ã, p̃).
type PublicKey struct {
	params *Params
	inner  *core.PublicKey
}

// PrivateKey is a ring-LWE private key r̃2.
type PrivateKey struct {
	params *Params
	inner  *core.PrivateKey
}

// Ciphertext is a ring-LWE ciphertext (c̃1, c̃2).
type Ciphertext struct {
	params *Params
	inner  *core.Ciphertext
}

// NewCiphertext returns a zero ciphertext with preallocated buffers, the
// reusable destination for Workspace.EncryptInto.
func NewCiphertext(p *Params) *Ciphertext {
	return &Ciphertext{params: p, inner: core.NewCiphertext(p.inner)}
}

// Scheme is an encryption context bound to one randomness source. The
// one-shot methods (GenerateKeys, Encrypt, Encapsulate, …) run on an
// internal workspace and are NOT safe for concurrent use — they preserve
// the deterministic single-stream behaviour the known-answer tests pin.
// For concurrent traffic, give each goroutine its own Workspace (see
// NewWorkspace and AcquireWorkspace) or use the batch methods
// (EncryptBatch, EncapsulateBatch, …), which drive a bounded worker pool
// of pooled workspaces internally. Params may always be shared.
type Scheme struct {
	params *Params
	inner  *core.Scheme
	pool   sync.Pool // *Workspace, backing AcquireWorkspace
}

// Option configures optional Scheme behaviour at construction.
type Option func(*schemeConfig)

type schemeConfig struct {
	engine  string
	sampler string
}

// WithEngine selects the NTT backend the scheme's transforms run through,
// by registry name (see Engines). Every backend computes bit-identical
// results — the known-answer vectors hold under all of them — so this is
// purely a speed/footprint knob: "shoup" (the default) is the
// Shoup-multiplied lazy-reduction kernel, "barrett" the generic reference
// path, and "packed" the paper's two-coefficients-per-word layout (which
// allocates per transform; it exists for study, not throughput).
// Construction panics if the name is not registered.
func WithEngine(name string) Option {
	return func(c *schemeConfig) { c.engine = name }
}

// Engines lists the registered NTT backend names accepted by WithEngine.
func Engines() []string { return ntt.EngineNames() }

// WithSampler selects the discrete-Gaussian sampler backend the scheme's
// workspaces draw error polynomials from, by registry name (see Samplers).
// All backends target the identical distribution, but they spend
// randomness differently, so only the default "knuth-yao" — the paper's
// serial LUT sampler, the one the known-answer vectors pin — reproduces
// historical deterministic streams; "batched-ky" trades that for ≈6×
// sampling throughput via 64-bit batched LUT probes, and "cdt" trades it
// for a fixed-shape constant-time inversion. Ciphertexts sampled under any
// backend interoperate freely (decryption consumes no randomness).
// Construction panics if the name is not registered.
func WithSampler(name string) Option {
	return func(c *schemeConfig) { c.sampler = name }
}

// Samplers lists the registered Gaussian sampler backend names accepted by
// WithSampler.
func Samplers() []string { return sampler.Names() }

func applyOptions(opts []Option) schemeConfig {
	c := schemeConfig{engine: ntt.DefaultEngine, sampler: sampler.Default}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// New returns a Scheme drawing randomness from the operating system CSPRNG
// (crypto/rand).
func New(p *Params, opts ...Option) *Scheme {
	c := applyOptions(opts)
	s, err := core.NewWithEngines(p.inner, rng.NewCryptoSource(), c.engine, c.sampler)
	if err != nil {
		// Construction over validated Params fails only for an unknown or
		// incompatible backend name.
		panic("ringlwe: " + err.Error())
	}
	return newScheme(p, s)
}

// NewDeterministic returns a Scheme with a seeded deterministic generator —
// reproducible, NOT secure. For tests, benchmarks and simulations only.
// Workspaces forked from a deterministic Scheme are themselves
// deterministic (fork order matters, per-workspace streams do not race).
// Engine choice (WithEngine) does not affect the deterministic stream:
// transforms consume no randomness.
func NewDeterministic(p *Params, seed uint64, opts ...Option) *Scheme {
	c := applyOptions(opts)
	s, err := core.NewWithEngines(p.inner, rng.NewXorshift128(seed), c.engine, c.sampler)
	if err != nil {
		panic("ringlwe: " + err.Error())
	}
	return newScheme(p, s)
}

// Engine returns the name of the NTT backend this scheme runs on.
func (s *Scheme) Engine() string { return s.inner.Engine() }

// Sampler returns the name of the Gaussian sampler backend this scheme's
// workspaces draw error polynomials from.
func (s *Scheme) Sampler() string { return s.inner.Sampler() }

func newScheme(p *Params, inner *core.Scheme) *Scheme {
	s := &Scheme{params: p, inner: inner}
	s.pool.New = func() any { return s.NewWorkspace() }
	return s
}

// SamplerStats exposes the scheme's Gaussian-sampler counters, aggregated
// atomically across every workspace (one-shot, pooled and explicit alike).
// Safe to read concurrently with encrypt traffic.
func (s *Scheme) SamplerStats() (samples, lut1, lut2, scans uint64) {
	return s.inner.SamplerStats()
}

// GenerateKeys creates a key pair under a fresh uniform ã.
func (s *Scheme) GenerateKeys() (*PublicKey, *PrivateKey, error) {
	pk, sk, err := s.inner.GenerateKeys()
	if err != nil {
		return nil, nil, err
	}
	return &PublicKey{params: s.params, inner: pk},
		&PrivateKey{params: s.params, inner: sk}, nil
}

// Encrypt seals a MessageSize-byte message to pk.
func (s *Scheme) Encrypt(pk *PublicKey, msg []byte) (*Ciphertext, error) {
	if pk.params.inner != s.params.inner {
		return nil, errors.New("ringlwe: public key belongs to a different parameter set")
	}
	ct, err := s.inner.Encrypt(pk.inner, msg)
	if err != nil {
		return nil, err
	}
	return &Ciphertext{params: s.params, inner: ct}, nil
}

// Decrypt opens ct with sk. Note the scheme's intrinsic failure rate; use
// the KEM interface when transporting keys.
func (s *Scheme) Decrypt(sk *PrivateKey, ct *Ciphertext) ([]byte, error) {
	return sk.Decrypt(ct)
}

// Decrypt opens ct directly with the private key (no Scheme needed:
// decryption consumes no randomness).
func (sk *PrivateKey) Decrypt(ct *Ciphertext) ([]byte, error) {
	if ct.params.inner != sk.params.inner {
		return nil, errors.New("ringlwe: ciphertext belongs to a different parameter set")
	}
	return sk.inner.Decrypt(ct.inner)
}

// Params returns the key's parameter set.
func (pk *PublicKey) Params() *Params { return pk.params }

// Params returns the key's parameter set.
func (sk *PrivateKey) Params() *Params { return sk.params }

// Params returns the ciphertext's parameter set.
func (ct *Ciphertext) Params() *Params { return ct.params }

// Bytes serializes the public key.
func (pk *PublicKey) Bytes() []byte { return pk.inner.Bytes() }

// Bytes serializes the private key.
func (sk *PrivateKey) Bytes() []byte { return sk.inner.Bytes() }

// Bytes serializes the ciphertext.
func (ct *Ciphertext) Bytes() []byte { return ct.inner.Bytes() }

// ParsePublicKey deserializes a public key under p.
func ParsePublicKey(p *Params, data []byte) (*PublicKey, error) {
	pk, err := core.ParsePublicKey(p.inner, data)
	if err != nil {
		return nil, fmt.Errorf("ringlwe: %w", err)
	}
	return &PublicKey{params: p, inner: pk}, nil
}

// ParsePrivateKey deserializes a private key under p.
func ParsePrivateKey(p *Params, data []byte) (*PrivateKey, error) {
	sk, err := core.ParsePrivateKey(p.inner, data)
	if err != nil {
		return nil, fmt.Errorf("ringlwe: %w", err)
	}
	return &PrivateKey{params: p, inner: sk}, nil
}

// ParseCiphertext deserializes a ciphertext under p.
func ParseCiphertext(p *Params, data []byte) (*Ciphertext, error) {
	ct, err := core.ParseCiphertext(p.inner, data)
	if err != nil {
		return nil, fmt.Errorf("ringlwe: %w", err)
	}
	return &Ciphertext{params: p, inner: ct}, nil
}
