package ringlwe

import (
	"bytes"
	"testing"
)

// Native fuzz targets for the deserialization and decapsulation surfaces —
// the two places attacker-controlled bytes enter the library. Run the seed
// corpus as part of `go test`; fuzz longer with `go test -fuzz=Fuzz...`.

func FuzzParseCiphertext(f *testing.F) {
	p := P1()
	s := NewDeterministic(p, 9001)
	pk, _, err := s.GenerateKeys()
	if err != nil {
		f.Fatal(err)
	}
	ct, err := s.Encrypt(pk, make([]byte, p.MessageSize()))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ct.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 833))
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := ParseCiphertext(p, data)
		if err != nil {
			return
		}
		// Anything accepted must re-serialize identically.
		if !bytes.Equal(parsed.Bytes(), data) {
			t.Fatalf("accepted ciphertext does not round-trip")
		}
	})
}

func FuzzParsePublicKey(f *testing.F) {
	p := P1()
	s := NewDeterministic(p, 9002)
	pk, _, err := s.GenerateKeys()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pk.Bytes())
	f.Add(make([]byte, 833))
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := ParsePublicKey(p, data)
		if err != nil {
			return
		}
		if !bytes.Equal(parsed.Bytes(), data) {
			t.Fatalf("accepted public key does not round-trip")
		}
	})
}

func FuzzDecapsulate(f *testing.F) {
	p := P1()
	s := NewDeterministic(p, 9003)
	pk, sk, err := s.GenerateKeys()
	if err != nil {
		f.Fatal(err)
	}
	blob, _, err := s.Encapsulate(pk)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(blob))
	f.Add(make([]byte, p.EncapsulationSize()))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; errors are the expected outcome for garbage.
		_, _ = s.Decapsulate(sk, EncapsulatedKey(data))
	})
}
