package ringlwe

import (
	"bytes"
	"testing"
)

// Native fuzz targets for the deserialization and decapsulation surfaces —
// the two places attacker-controlled bytes enter the library. Run the seed
// corpus as part of `go test`; fuzz longer with `go test -fuzz=Fuzz...`.

func FuzzParseCiphertext(f *testing.F) {
	p := P1()
	s := NewDeterministic(p, 9001)
	pk, _, err := s.GenerateKeys()
	if err != nil {
		f.Fatal(err)
	}
	ct, err := s.Encrypt(pk, make([]byte, p.MessageSize()))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ct.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 833))
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := ParseCiphertext(p, data)
		if err != nil {
			return
		}
		// Anything accepted must re-serialize identically.
		if !bytes.Equal(parsed.Bytes(), data) {
			t.Fatalf("accepted ciphertext does not round-trip")
		}
	})
}

func FuzzParsePublicKey(f *testing.F) {
	p := P1()
	s := NewDeterministic(p, 9002)
	pk, _, err := s.GenerateKeys()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pk.Bytes())
	f.Add(make([]byte, 833))
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := ParsePublicKey(p, data)
		if err != nil {
			return
		}
		if !bytes.Equal(parsed.Bytes(), data) {
			t.Fatalf("accepted public key does not round-trip")
		}
	})
}

// FuzzParseAny drives the self-describing parsers: header truncation,
// unknown params IDs, kind confusion and trailing bytes must all surface
// as errors, and anything accepted must round-trip bit-identically
// through MarshalBinary.
func FuzzParseAny(f *testing.F) {
	s1 := NewDeterministic(P1(), 9004)
	s2 := NewDeterministic(P2(), 9005)
	s3 := NewDeterministic(B1(), 9008) // RNS: multi-row residue bodies
	for _, s := range []*Scheme{s1, s2, s3} {
		pk, sk, err := s.GenerateKeys()
		if err != nil {
			f.Fatal(err)
		}
		ct, err := s.Encrypt(pk, make([]byte, s.Params().MessageSize()))
		if err != nil {
			f.Fatal(err)
		}
		for _, obj := range []interface {
			MarshalBinary() ([]byte, error)
		}{pk, sk, ct} {
			blob, err := obj.MarshalBinary()
			if err != nil {
				f.Fatal(err)
			}
			f.Add(blob)
			f.Add(blob[:4])           // header truncation
			f.Add(append(blob, 0xAA)) // trailing byte
			// Cross-set ID confusion: the same body under another set's
			// ID must fail the body-length check, never mis-decode.
			crossID := append([]byte(nil), blob...)
			crossID[4], crossID[5] = 0, byte(wireIDP1)
			if s == s1 {
				crossID[5] = byte(wireIDB1)
			}
			f.Add(crossID)
		}
		blob, _, err := s.Encapsulate(pk)
		if err != nil {
			f.Fatal(err)
		}
		wire, err := blob.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	unknown := []byte{'R', 'L', 2, 3, 0xBE, 0xEF} // unknown params ID
	f.Add(unknown)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if pk, err := ParseAnyPublicKey(data); err == nil {
			re, err := pk.MarshalBinary()
			if err != nil || !bytes.Equal(re, data) {
				t.Fatalf("accepted public key does not round-trip (err=%v)", err)
			}
		}
		if sk, err := ParseAnyPrivateKey(data); err == nil {
			re, err := sk.MarshalBinary()
			if err != nil || !bytes.Equal(re, data) {
				t.Fatalf("accepted private key does not round-trip (err=%v)", err)
			}
		}
		if ct, err := ParseAnyCiphertext(data); err == nil {
			re, err := ct.MarshalBinary()
			if err != nil || !bytes.Equal(re, data) {
				t.Fatalf("accepted ciphertext does not round-trip (err=%v)", err)
			}
		}
		if _, ek, err := ParseAnyEncapsulatedKey(data); err == nil {
			re, err := ek.MarshalBinary()
			if err != nil || !bytes.Equal(re, data) {
				t.Fatalf("accepted encapsulated key does not round-trip (err=%v)", err)
			}
		}
	})
}

// FuzzEvalWire drives the aggregate-ciphertext wire surface: truncation,
// kind confusion against every existing kind, addend-count overflow and
// cross-set destinations must all surface as errors (never panics), and any
// accepted blob must round-trip bit-identically with its addend count
// intact and within budget.
func FuzzEvalWire(f *testing.F) {
	a1 := NewDeterministic(A1(), 9006)
	p1 := NewDeterministic(P1(), 9007)
	b1 := NewDeterministic(B1(), 9009) // RNS: 8-byte addend counts actually in budget
	pinned := NewCiphertext(A1())
	for _, s := range []*Scheme{a1, p1, b1} {
		p := s.Params()
		pk, sk, err := s.GenerateKeys()
		if err != nil {
			f.Fatal(err)
		}
		cts := make([]*Ciphertext, 2)
		for i := range cts {
			if cts[i], err = s.Encrypt(pk, make([]byte, p.MessageSize())); err != nil {
				f.Fatal(err)
			}
		}
		agg := NewCiphertext(p)
		if err := s.AggregateInto(agg, cts); err != nil {
			f.Fatal(err)
		}
		blob, err := Aggregate{agg}.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		f.Add(blob[:wireHeaderSize+3]) // sub-header truncation
		f.Add(append(blob, 0x55))      // trailing byte
		overflow := append([]byte(nil), blob...)
		overflow[wireHeaderSize] = 0xFF // addend count far past any budget
		f.Add(overflow)
		ctBlob, err := cts[0].MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(ctBlob) // kind confusion: plain ciphertext into aggregate parsers
		confused := append([]byte(nil), blob...)
		confused[3] = KindEncapsulatedKey // kind confusion the other way
		f.Add(confused)
		crossID := append([]byte(nil), blob...)
		crossID[4], crossID[5] = 0, byte(wireIDB1) // cross-set ID: body length mismatch
		if s == b1 {
			crossID[5] = byte(wireIDA1)
		}
		f.Add(crossID)
		skBlob, err := sk.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(skBlob)
	}
	f.Add([]byte{'R', 'L', 2, KindAggregate, 0xBE, 0xEF}) // unknown params ID
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if ct, err := ParseAnyAggregate(data); err == nil {
			if ct.Addends() > uint64(ct.Params().MaxAddends()) {
				t.Fatalf("accepted aggregate with %d addends over budget %d", ct.Addends(), ct.Params().MaxAddends())
			}
			re, err := Aggregate{ct}.MarshalBinary()
			if err != nil || !bytes.Equal(re, data) {
				t.Fatalf("accepted aggregate does not round-trip (err=%v)", err)
			}
		}
		// The pinned-destination parsers must enforce the A1 set against
		// arbitrary headers (cross-set blobs surface ErrParamsMismatch, not
		// corruption) and never touch memory outside the buffers.
		_ = ParseAggregateInto(pinned, data)
		_ = ParseCiphertextInto(pinned, data)
	})
}

func FuzzDecapsulate(f *testing.F) {
	p := P1()
	s := NewDeterministic(p, 9003)
	pk, sk, err := s.GenerateKeys()
	if err != nil {
		f.Fatal(err)
	}
	blob, _, err := s.Encapsulate(pk)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(blob))
	f.Add(make([]byte, p.EncapsulationSize()))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; errors are the expected outcome for garbage.
		_, _ = s.Decapsulate(sk, EncapsulatedKey(data))
	})
}
