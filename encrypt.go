package ringlwe

// The Encrypter/Decrypter capability: raw LPR encryption and decryption on
// the scheme's one-shot workspace. The KEM capability (kem.go) is the
// recommended way to transport keys — it detects the scheme's intrinsic
// decryption-failure rate instead of silently corrupting plaintext.

// GenerateKeys creates a key pair under a fresh uniform ã.
func (s *Scheme) GenerateKeys() (*PublicKey, *PrivateKey, error) {
	pk, sk, err := s.inner.GenerateKeys()
	if err != nil {
		return nil, nil, err
	}
	return &PublicKey{params: s.params, inner: pk},
		&PrivateKey{params: s.params, inner: sk}, nil
}

// Encrypt seals a MessageSize-byte message to pk.
func (s *Scheme) Encrypt(pk *PublicKey, msg []byte) (*Ciphertext, error) {
	if pk.params.inner != s.params.inner {
		return nil, paramsMismatch("public key")
	}
	ct, err := s.inner.Encrypt(pk.inner, msg)
	if err != nil {
		return nil, err
	}
	return &Ciphertext{params: s.params, inner: ct}, nil
}

// Decrypt opens ct with sk under the scheme's profile (the ConstantTime
// profile decodes branchlessly). Note the scheme's intrinsic failure rate;
// use the KEM interface when transporting keys. Decryption consumes no
// randomness, so unlike the other one-shot methods this is safe to call
// concurrently.
func (s *Scheme) Decrypt(sk *PrivateKey, ct *Ciphertext) ([]byte, error) {
	if sk.params.inner != s.params.inner {
		return nil, paramsMismatch("private key")
	}
	if ct.params.inner != s.params.inner {
		return nil, paramsMismatch("ciphertext")
	}
	if s.inner.ConstantTimeDecode() {
		return sk.inner.DecryptConstantTime(ct.inner)
	}
	return sk.inner.Decrypt(ct.inner)
}

// Decrypt opens ct directly with the private key (no Scheme needed:
// decryption consumes no randomness), always via the branching decoder —
// route through Scheme.Decrypt or a Workspace to honour a constant-time
// profile.
func (sk *PrivateKey) Decrypt(ct *Ciphertext) ([]byte, error) {
	if ct.params.inner != sk.params.inner {
		return nil, paramsMismatch("ciphertext")
	}
	return sk.inner.Decrypt(ct.inner)
}
