package ringlwe

import (
	"sync"

	"ringlwe/internal/core"
	"ringlwe/internal/rng"
)

// Scheme is an encryption context bound to one randomness source and one
// resolved Profile. It implements every capability interface (Encrypter,
// Decrypter, KEM, AuthKEM and the batch variants); consumers should
// usually depend on the narrowest interface that covers their needs.
//
// The one-shot methods (GenerateKeys, Encrypt, Encapsulate, …) run on an
// internal workspace and are NOT safe for concurrent use — they preserve
// the deterministic single-stream behaviour the known-answer tests pin.
// For concurrent traffic, give each goroutine its own Workspace (see
// NewWorkspace and AcquireWorkspace) or use the batch methods
// (EncryptBatch, EncapsulateBatch, …), which drive a bounded worker pool
// of pooled workspaces internally. Params may always be shared.
type Scheme struct {
	params *Params
	inner  *core.Scheme
	pool   sync.Pool // *Workspace, backing AcquireWorkspace
}

// New returns a Scheme drawing randomness from the operating system CSPRNG
// (crypto/rand), or from the WithRandom reader when one is given. With no
// profile options the scheme resolves to the "default" profile (Shoup NTT
// kernels, serial Knuth-Yao sampler — the KAT-pinned stream on the fast
// transform path).
func New(p *Params, opts ...Option) *Scheme {
	c := applyOptions(opts)
	var src rng.Source
	if c.random != nil {
		src = rng.NewReaderSource(c.random)
	} else {
		src = rng.NewCryptoSource()
	}
	s, err := core.NewWithOptions(p.inner, src, c.coreOptions())
	if err != nil {
		// Construction over validated Params fails only for an unknown or
		// incompatible backend name.
		panic("ringlwe: " + err.Error())
	}
	return newScheme(p, s)
}

// NewDeterministic returns a Scheme with a seeded deterministic generator —
// reproducible, NOT secure. For tests, benchmarks and simulations only.
// Workspaces forked from a deterministic Scheme are themselves
// deterministic (fork order matters, per-workspace streams do not race).
// Engine choice (WithEngine) does not affect the deterministic stream —
// transforms consume no randomness — but sampler choice does; only the
// "knuth-yao" sampler reproduces the historical streams. WithRandom is
// ignored: the seed defines the stream.
func NewDeterministic(p *Params, seed uint64, opts ...Option) *Scheme {
	c := applyOptions(opts)
	s, err := core.NewWithOptions(p.inner, rng.NewXorshift128(seed), c.coreOptions())
	if err != nil {
		panic("ringlwe: " + err.Error())
	}
	return newScheme(p, s)
}

func newScheme(p *Params, inner *core.Scheme) *Scheme {
	s := &Scheme{params: p, inner: inner}
	s.pool.New = func() any { return s.NewWorkspace() }
	return s
}

// Params returns the scheme's parameter set.
func (s *Scheme) Params() *Params { return s.params }

// Profile reports the configuration the scheme resolved to: backend names
// and hardening switches, with presets recoverable via Profile.Name. The
// round trip New(p, WithProfile(s.Profile())) reconstructs an equivalent
// scheme.
func (s *Scheme) Profile() Profile {
	return Profile{
		Engine:             s.inner.Engine(),
		Sampler:            s.inner.Sampler(),
		ConstantTimeDecode: s.inner.ConstantTimeDecode(),
	}
}

// Engine returns the name of the NTT backend this scheme runs on.
func (s *Scheme) Engine() string { return s.inner.Engine() }

// Sampler returns the name of the Gaussian sampler backend this scheme's
// workspaces draw error polynomials from.
func (s *Scheme) Sampler() string { return s.inner.Sampler() }

// SamplerStats exposes the scheme's Gaussian-sampler counters, aggregated
// atomically across every workspace (one-shot, pooled and explicit alike).
// Safe to read concurrently with encrypt traffic.
func (s *Scheme) SamplerStats() (samples, lut1, lut2, scans uint64) {
	return s.inner.SamplerStats()
}

// fillRandom draws bytes from the scheme's randomness source via the
// uniform pool (16 bits at a time; the byte layout lives in
// core.Workspace.FillRandom, shared with the workspace KEM path).
func (s *Scheme) fillRandom(out []byte) { s.inner.FillRandom(out) }
