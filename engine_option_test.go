package ringlwe

import (
	"bytes"
	"testing"
)

// Engine choice is a pure speed knob: the same deterministic seed must
// yield byte-identical keys and ciphertexts under every registered backend,
// and artifacts produced under one engine must parse and decrypt under a
// scheme running another.
func TestWithEngineBitIdentical(t *testing.T) {
	p := P1()
	msg := make([]byte, p.MessageSize())
	for i := range msg {
		msg[i] = byte(i * 37)
	}

	type artifact struct {
		engine  string
		pk, ct  []byte
		plain   []byte
		skBytes []byte
	}
	var arts []artifact
	for _, name := range Engines() {
		s := NewDeterministic(p, 12345, WithEngine(name))
		if s.Engine() != name {
			t.Fatalf("Engine() = %q, want %q", s.Engine(), name)
		}
		pk, sk, err := s.GenerateKeys()
		if err != nil {
			t.Fatal(err)
		}
		ct, err := s.Encrypt(pk, msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		arts = append(arts, artifact{name, pk.Bytes(), ct.Bytes(), got, sk.Bytes()})
	}
	ref := arts[0]
	for _, a := range arts[1:] {
		if !bytes.Equal(a.pk, ref.pk) {
			t.Errorf("engine %s public key differs from %s", a.engine, ref.engine)
		}
		if !bytes.Equal(a.ct, ref.ct) {
			t.Errorf("engine %s ciphertext differs from %s", a.engine, ref.engine)
		}
		if !bytes.Equal(a.skBytes, ref.skBytes) {
			t.Errorf("engine %s private key differs from %s", a.engine, ref.engine)
		}
		if !bytes.Equal(a.plain, ref.plain) {
			t.Errorf("engine %s decryption differs from %s", a.engine, ref.engine)
		}
	}

	// Cross-engine interop: ciphertext from a shoup scheme decrypts under a
	// barrett scheme's key material and vice versa.
	sShoup := NewDeterministic(p, 777, WithEngine("shoup"))
	sBarrett := NewDeterministic(p, 777, WithEngine("barrett"))
	pk1, sk1, err := sShoup.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	pk2, err := ParsePublicKey(p, pk1.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sBarrett.Encrypt(pk2, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk1.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	// Intrinsic failure rate allows rare bit flips; byte-identity holds with
	// overwhelming probability for one message — accept ≤ 2 flipped bits so
	// the test is not flaky on an in-spec decryption failure.
	flips := 0
	for i := range got {
		d := got[i] ^ msg[i]
		for ; d != 0; d &= d - 1 {
			flips++
		}
	}
	if flips > 2 {
		t.Fatalf("cross-engine decrypt flipped %d bits", flips)
	}
}

// Workspaces inherit the scheme's engine and stay allocation-free on the
// Shoup path.
func TestWithEngineUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with unknown engine did not panic")
		}
	}()
	New(P1(), WithEngine("definitely-not-an-engine"))
}
