module ringlwe

go 1.24
