package ringlwe

import (
	"bytes"
	"errors"
	"testing"
)

func TestParamsAccessors(t *testing.T) {
	p1, p2 := P1(), P2()
	if p1.Name() != "P1" || p2.Name() != "P2" {
		t.Fatal("names wrong")
	}
	if p1.N() != 256 || p1.Q() != 7681 {
		t.Fatal("P1 constants wrong")
	}
	if p2.N() != 512 || p2.Q() != 12289 {
		t.Fatal("P2 constants wrong")
	}
	if p1.MessageSize() != 32 || p2.MessageSize() != 64 {
		t.Fatal("message sizes wrong")
	}
	if p1.CiphertextSize() != 833 || p1.PublicKeySize() != 833 || p1.PrivateKeySize() != 417 {
		t.Fatalf("P1 sizes: ct=%d pk=%d sk=%d", p1.CiphertextSize(), p1.PublicKeySize(), p1.PrivateKeySize())
	}
	perBit, perMsg := p1.FailureRate()
	if perBit <= 0 || perMsg <= perBit {
		t.Fatal("failure rate estimates inconsistent")
	}
	if p1.Sigma() < 4.5 || p1.Sigma() > 4.52 {
		t.Fatalf("P1 sigma = %v", p1.Sigma())
	}
}

func TestCustomParams(t *testing.T) {
	// n=128, q=3329? 3329 ≡ 1 mod 256: 3328 = 256·13 ✓ (the Kyber prime).
	p, err := Custom("K", 128, 3329, 3, 1)
	if err != nil {
		t.Fatalf("custom params rejected: %v", err)
	}
	s := NewDeterministic(p, 1)
	pk, sk, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, p.MessageSize())
	msg[0] = 0xAB
	ct, err := s.Encrypt(pk, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Log("decryption failure (within LPR failure rate for toy params)")
	}

	if _, err := Custom("bad", 100, 3329, 3, 1); err == nil {
		t.Error("non-power-of-two n accepted")
	}
	if _, err := Custom("bad", 128, 3330, 3, 1); err == nil {
		t.Error("composite q accepted")
	}
}

func TestPublicAPIRoundTrip(t *testing.T) {
	for _, p := range []*Params{P1(), P2()} {
		s := NewDeterministic(p, 42)
		pk, sk, err := s.GenerateKeys()
		if err != nil {
			t.Fatal(err)
		}
		msg := make([]byte, p.MessageSize())
		for i := range msg {
			msg[i] = byte(3*i + 1)
		}
		ct, err := s.Encrypt(pk, msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Decrypt(sk, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Logf("%s: decryption failure (within LPR failure rate)", p.Name())
		}
	}
}

func TestCryptoRandScheme(t *testing.T) {
	s := New(P1())
	pk, sk, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, P1().MessageSize())
	ct, err := s.Encrypt(pk, msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Decrypt(ct); err != nil {
		t.Fatal(err)
	}
}

func TestSerializationThroughPublicAPI(t *testing.T) {
	p := P1()
	s := NewDeterministic(p, 7)
	pk, sk, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	pk2, err := ParsePublicKey(p, pk.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	sk2, err := ParsePrivateKey(p, sk.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, p.MessageSize())
	msg[5] = 0xFF
	ct, err := s.Encrypt(pk2, msg)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := ParseCiphertext(p, ct.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk2.Decrypt(ct2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Log("decryption failure (within LPR failure rate)")
	}
	if len(ct.Bytes()) != p.CiphertextSize() {
		t.Fatalf("ciphertext size %d, want %d", len(ct.Bytes()), p.CiphertextSize())
	}
	if _, err := ParsePublicKey(p, []byte{1, 2, 3}); err == nil {
		t.Error("garbage public key accepted")
	}
}

func TestCrossParameterRejection(t *testing.T) {
	s1 := NewDeterministic(P1(), 1)
	s2 := NewDeterministic(P2(), 2)
	pk2, sk2, err := s2.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Encrypt(pk2, make([]byte, P1().MessageSize())); err == nil {
		t.Error("cross-parameter encrypt accepted")
	}
	ct2, err := s2.Encrypt(pk2, make([]byte, P2().MessageSize()))
	if err != nil {
		t.Fatal(err)
	}
	_, sk1, err := s1.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sk1.Decrypt(ct2); err == nil {
		t.Error("cross-parameter decrypt accepted")
	}
	_ = sk2
}

func TestKEMRoundTrip(t *testing.T) {
	for _, p := range []*Params{P1(), P2()} {
		s := NewDeterministic(p, 99)
		pk, sk, err := s.GenerateKeys()
		if err != nil {
			t.Fatal(err)
		}
		blob, keyA, err := s.Encapsulate(pk)
		if err != nil {
			t.Fatal(err)
		}
		if len(blob) != p.EncapsulationSize() {
			t.Fatalf("blob size %d, want %d", len(blob), p.EncapsulationSize())
		}
		keyB, err := s.Decapsulate(sk, blob)
		if err != nil {
			// An intrinsic decryption failure is possible but the fixed
			// seed makes this deterministic; treat as a real failure.
			t.Fatalf("%s: decapsulation failed: %v", p.Name(), err)
		}
		if keyA != keyB {
			t.Fatalf("%s: shared keys differ", p.Name())
		}
	}
}

func TestKEMDetectsCorruption(t *testing.T) {
	p := P1()
	s := NewDeterministic(p, 5)
	pk, sk, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	blob, _, err := s.Encapsulate(pk)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the confirmation tag.
	bad := append(EncapsulatedKey(nil), blob...)
	bad[len(bad)-1] ^= 1
	if _, err := s.Decapsulate(sk, bad); !errors.Is(err, ErrDecapsulation) {
		t.Errorf("tag corruption: got %v, want ErrDecapsulation", err)
	}
	// Corrupt one ciphertext byte heavily: either parse failure (range
	// check) or failed confirmation is acceptable, silence is not.
	bad2 := append(EncapsulatedKey(nil), blob...)
	for i := 1; i < 40; i++ {
		bad2[i] ^= 0xFF
	}
	if _, err := s.Decapsulate(sk, bad2); err == nil {
		t.Error("ciphertext corruption undetected")
	}
	// Wrong size.
	if _, err := s.Decapsulate(sk, blob[:10]); err == nil {
		t.Error("short blob accepted")
	}
}

func TestKEMWrongKeyFails(t *testing.T) {
	p := P1()
	s := NewDeterministic(p, 6)
	pk, _, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	_, skOther, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	blob, _, err := s.Encapsulate(pk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Decapsulate(skOther, blob); !errors.Is(err, ErrDecapsulation) {
		t.Errorf("wrong key: got %v, want ErrDecapsulation", err)
	}
}

func TestKEMKeysVary(t *testing.T) {
	p := P1()
	s := NewDeterministic(p, 8)
	pk, _, err := s.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	_, k1, err := s.Encapsulate(pk)
	if err != nil {
		t.Fatal(err)
	}
	_, k2, err := s.Encapsulate(pk)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("two encapsulations produced the same key")
	}
}
