package ringlwe

// Workspace and batch benchmarks: the systems-layer counterpart of the
// paper-table benchmarks in bench_test.go. Run with
//
//	go test -bench='Parallel|Workspace|Legacy|Batch' -benchmem
//
// The legacy one-shot path allocates several polynomials per operation and
// serializes all callers through one sampler; the workspace path is
// allocation-free in steady state and scales across cores (the parallel
// benchmarks are the speedup evidence for the BENCH trajectory).

import (
	"testing"
)

func benchWorkspaceEncrypt(b *testing.B, p *Params) {
	s := NewDeterministic(p, 100)
	pk, _, err := s.GenerateKeys()
	if err != nil {
		b.Fatal(err)
	}
	ws := s.NewWorkspace()
	msg := make([]byte, p.MessageSize())
	ct := NewCiphertext(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ws.EncryptInto(ct, pk, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkspaceEncrypt_P1(b *testing.B) { benchWorkspaceEncrypt(b, P1()) }
func BenchmarkWorkspaceEncrypt_P2(b *testing.B) { benchWorkspaceEncrypt(b, P2()) }

func benchLegacyEncrypt(b *testing.B, p *Params) {
	s := NewDeterministic(p, 100)
	pk, _, err := s.GenerateKeys()
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, p.MessageSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Encrypt(pk, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLegacyEncrypt_P1(b *testing.B) { benchLegacyEncrypt(b, P1()) }
func BenchmarkLegacyEncrypt_P2(b *testing.B) { benchLegacyEncrypt(b, P2()) }

func BenchmarkWorkspaceDecrypt_P1(b *testing.B) {
	p := P1()
	s := NewDeterministic(p, 101)
	pk, sk, err := s.GenerateKeys()
	if err != nil {
		b.Fatal(err)
	}
	ws := s.NewWorkspace()
	msg := make([]byte, p.MessageSize())
	ct := NewCiphertext(p)
	if err := ws.EncryptInto(ct, pk, msg); err != nil {
		b.Fatal(err)
	}
	out := make([]byte, p.MessageSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ws.DecryptInto(out, sk, ct); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncryptParallel measures aggregate encryption throughput with
// one workspace per benchmark goroutine on a shared Scheme — the
// concurrent-traffic shape the workspace refactor exists for.
func benchEncryptParallel(b *testing.B, p *Params) {
	s := New(p)
	pk, _, err := s.GenerateKeys()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ws := s.NewWorkspace()
		msg := make([]byte, p.MessageSize())
		ct := NewCiphertext(p)
		for pb.Next() {
			if err := ws.EncryptInto(ct, pk, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEncryptParallel_P1(b *testing.B) { benchEncryptParallel(b, P1()) }
func BenchmarkEncryptParallel_P2(b *testing.B) { benchEncryptParallel(b, P2()) }

// BenchmarkDecapsulateParallel measures aggregate KEM-server throughput:
// many goroutines decapsulating against one long-term key, as the protocol
// layer does per connection.
func BenchmarkDecapsulateParallel_P1(b *testing.B) {
	p := P1()
	s := New(p)
	pk, sk, err := s.GenerateKeys()
	if err != nil {
		b.Fatal(err)
	}
	blob, _, err := s.Encapsulate(pk)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Decapsulate(sk, blob); err != nil {
		b.Skip("seed hit the intrinsic LPR failure; rerun")
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ws := s.NewWorkspace()
		for pb.Next() {
			if _, err := ws.Decapsulate(sk, blob); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEncapsulateParallel_P1(b *testing.B) {
	p := P1()
	s := New(p)
	pk, _, err := s.GenerateKeys()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ws := s.NewWorkspace()
		for pb.Next() {
			if _, _, err := ws.Encapsulate(pk); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEncryptBatch_P1(b *testing.B) {
	p := P1()
	s := New(p)
	pk, _, err := s.GenerateKeys()
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	msgs := make([][]byte, batch)
	for i := range msgs {
		msgs[i] = make([]byte, p.MessageSize())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.EncryptBatch(pk, msgs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(batch), "msgs/batch")
}
