package ringlwe

import "ringlwe/internal/core"

// PublicKey is a ring-LWE public key (ã, p̃).
type PublicKey struct {
	params *Params
	inner  *core.PublicKey
}

// PrivateKey is a ring-LWE private key r̃2.
type PrivateKey struct {
	params *Params
	inner  *core.PrivateKey
}

// Ciphertext is a ring-LWE ciphertext (c̃1, c̃2).
type Ciphertext struct {
	params *Params
	inner  *core.Ciphertext
}

// NewCiphertext returns a zero ciphertext with preallocated buffers, the
// reusable destination for Workspace.EncryptInto.
func NewCiphertext(p *Params) *Ciphertext {
	return &Ciphertext{params: p, inner: core.NewCiphertext(p.inner)}
}

// Params returns the key's parameter set.
func (pk *PublicKey) Params() *Params { return pk.params }

// Params returns the key's parameter set.
func (sk *PrivateKey) Params() *Params { return sk.params }

// Params returns the ciphertext's parameter set.
func (ct *Ciphertext) Params() *Params { return ct.params }
